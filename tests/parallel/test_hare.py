"""Tests for the HARE parallel framework: exactness above all."""

import pytest
from hypothesis import given, settings

from repro.core.api import count_motifs
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle
from repro.errors import ValidationError
from repro.graph.generators import star_burst_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.executor import run_batches
from repro.parallel.hare import hare_count, hare_star_pair, hare_triangle
from repro.parallel.scheduler import build_batches
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=25, deadline=None)
@given(graph=temporal_graphs(max_edges=40), delta=deltas)
def test_hare_equals_serial(graph, delta):
    serial = count_motifs(graph, delta)
    assert hare_count(graph, delta, workers=2) == serial


@settings(max_examples=15, deadline=None)
@given(graph=temporal_graphs(max_edges=30), delta=deltas)
def test_hare_static_schedule_equals_serial(graph, delta):
    serial = count_motifs(graph, delta)
    assert hare_count(graph, delta, workers=2, schedule="static") == serial


class TestConfigurations:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("thrd", [None, 0, 5, float("inf")])
    def test_workers_and_thrd_grid(self, paper_graph, workers, thrd):
        serial = count_motifs(paper_graph, 10)
        assert hare_count(paper_graph, 10, workers=workers, thrd=thrd) == serial

    def test_heavy_hub_graph(self):
        g = star_burst_graph(30, 6, seed=4)
        serial = count_motifs(g, 50)
        assert hare_count(g, 50, workers=2, thrd=10) == serial

    def test_categories_star(self, paper_graph):
        result = hare_count(paper_graph, 10, workers=2, categories="star")
        expected = count_motifs(paper_graph, 10, categories="star")
        assert result == expected

    def test_categories_pair(self, paper_graph):
        result = hare_count(paper_graph, 10, workers=2, categories="pair")
        expected = count_motifs(paper_graph, 10, categories="pair")
        assert result == expected

    def test_categories_triangle(self, paper_graph):
        result = hare_count(paper_graph, 10, workers=2, categories="triangle")
        expected = count_motifs(paper_graph, 10, categories="triangle")
        assert result == expected

    def test_metadata(self, paper_graph):
        result = hare_count(paper_graph, 10, workers=2, schedule="static")
        assert result.algorithm == "hare[2]"
        assert result.meta["schedule"] == "static"

    def test_negative_delta(self, paper_graph):
        with pytest.raises(ValidationError):
            hare_count(paper_graph, -1, workers=2)

    def test_empty_graph(self):
        assert hare_count(TemporalGraph([]), 10, workers=2).total() == 0


class TestCategoryPasses:
    def test_hare_star_pair_matches_serial(self, paper_graph):
        star_s, pair_s = count_star_pair(paper_graph, 10)
        star_p, pair_p = hare_star_pair(paper_graph, 10, workers=2)
        assert star_p == star_s
        assert pair_p == pair_s

    def test_hare_triangle_matches_serial(self, paper_graph):
        assert hare_triangle(paper_graph, 10, workers=2) == count_triangle(paper_graph, 10)


class TestExecutor:
    def test_run_batches_serial_path(self, paper_graph):
        batches = build_batches(paper_graph, workers=1)
        star, pair, tri = run_batches(paper_graph, 10, batches, workers=1)
        star_s, pair_s = count_star_pair(paper_graph, 10)
        assert star == star_s
        assert pair == pair_s
        assert tri == count_triangle(paper_graph, 10)

    def test_star_pair_only(self, paper_graph):
        batches = build_batches(paper_graph, workers=1)
        star, pair, tri = run_batches(
            paper_graph, 10, batches, workers=1, triangle=False
        )
        assert tri is None
        assert star is not None

    def test_triangle_only(self, paper_graph):
        batches = build_batches(paper_graph, workers=1)
        star, pair, tri = run_batches(
            paper_graph, 10, batches, workers=1, star_pair=False
        )
        assert star is None and pair is None
        assert tri == count_triangle(paper_graph, 10)

    def test_invalid_schedule(self, paper_graph):
        with pytest.raises(ValidationError):
            run_batches(paper_graph, 10, [], workers=1, schedule="guided")

    def test_invalid_workers(self, paper_graph):
        with pytest.raises(ValidationError):
            run_batches(paper_graph, 10, [], workers=0)

    def test_oversubscription_is_exact(self, paper_graph):
        serial = count_motifs(paper_graph, 10)
        assert hare_count(paper_graph, 10, workers=6) == serial
