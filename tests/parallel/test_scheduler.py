"""Tests for HARE's task construction and scheduling."""

import pytest

from repro.errors import ValidationError
from repro.graph.generators import star_burst_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.scheduler import WorkBatch, build_batches, partition_static


def coverage(batches, graph):
    """Map node -> set of first-edge indices covered by the tasks."""
    covered = {}
    for batch in batches:
        for node, lo, hi in batch.tasks:
            top = graph.degree(node) if hi is None else min(hi, graph.degree(node))
            for i in range(lo, top):
                covered.setdefault(node, set()).add(i)
    return covered


class TestCoverage:
    def test_every_first_edge_covered_exactly_once(self, paper_graph):
        batches = build_batches(paper_graph, workers=3, thrd=2)
        seen = {}
        for batch in batches:
            for node, lo, hi in batch.tasks:
                top = paper_graph.degree(node) if hi is None else min(hi, paper_graph.degree(node))
                for i in range(lo, top):
                    key = (node, i)
                    assert key not in seen, f"duplicate coverage of {key}"
                    seen[key] = True
        for node in range(paper_graph.num_nodes):
            degree = paper_graph.degree(node)
            if degree < 2:
                continue
            for i in range(degree):
                assert (node, i) in seen

    def test_degree_one_nodes_skipped(self):
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
        batches = build_batches(g, workers=2)
        nodes = {task[0] for b in batches for task in b.tasks}
        assert nodes == {0}  # leaves have degree 1

    def test_degree_two_nodes_kept_for_triangles(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 0, 3)])
        batches = build_batches(g, workers=2)
        nodes = {task[0] for b in batches for task in b.tasks}
        assert nodes == {0, 1, 2}


class TestHeavySplitting:
    def test_heavy_node_is_split(self):
        g = star_burst_graph(20, 5, seed=1)  # hub degree 100
        hub = g.index(0)
        batches = build_batches(g, workers=2, thrd=10, split_factor=4)
        hub_tasks = [t for b in batches for t in b.tasks if t[0] == hub]
        assert len(hub_tasks) >= 8  # split into ~workers*split_factor ranges

    def test_infinite_thrd_disables_splitting(self):
        g = star_burst_graph(20, 5, seed=1)
        hub = g.index(0)
        batches = build_batches(g, workers=2, thrd=float("inf"))
        hub_tasks = [t for b in batches for t in b.tasks if t[0] == hub]
        assert hub_tasks == [(hub, 0, None)]

    def test_default_thrd_uses_top20_rule(self):
        g = star_burst_graph(30, 4, seed=2)
        batches_default = build_batches(g, workers=2)
        batches_explicit = build_batches(g, workers=2, thrd=4)
        assert sum(len(b.tasks) for b in batches_default) == \
            sum(len(b.tasks) for b in batches_explicit)

    def test_thrd_zero_splits_everything_splittable(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (0, 2, 3), (2, 0, 4)])
        batches = build_batches(g, workers=2, thrd=0)
        # every node with degree >= 2 appears in range tasks
        for batch in batches:
            for node, lo, hi in batch.tasks:
                assert hi is None or hi - lo >= 1

    def test_batches_sorted_heaviest_first(self):
        g = star_burst_graph(15, 4, seed=3)
        batches = build_batches(g, workers=2, thrd=5)
        weights = [b.weight for b in batches]
        assert weights == sorted(weights, reverse=True)


class TestStaticPartition:
    def test_one_mega_batch_per_worker(self, paper_graph):
        batches = build_batches(paper_graph, workers=3)
        merged = partition_static(batches, 3)
        assert len(merged) <= 3
        total_tasks = sum(len(b.tasks) for b in batches)
        assert sum(len(b.tasks) for b in merged) == total_tasks

    def test_static_keeps_coverage(self, paper_graph):
        dynamic = build_batches(paper_graph, workers=2, thrd=3)
        static = partition_static(dynamic, 2)
        assert coverage(dynamic, paper_graph) == coverage(static, paper_graph)

    def test_validation(self):
        with pytest.raises(ValidationError):
            partition_static([], 0)


class TestValidation:
    def test_workers_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            build_batches(paper_graph, workers=0)

    def test_split_factor_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            build_batches(paper_graph, workers=2, split_factor=0)

    def test_empty_graph(self):
        assert build_batches(TemporalGraph([]), workers=2) == []

    def test_workbatch_add(self):
        batch = WorkBatch()
        batch.add((0, 0, None), 5)
        assert batch.weight == 5
        assert batch.tasks == [(0, 0, None)]
