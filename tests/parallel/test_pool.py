"""Persistent shared-memory worker pool: exactness, reuse, lifecycle."""

import numpy as np
import pytest

from repro.core.api import count_motifs, count_motifs_sweep
from repro.errors import ParallelExecutionError, ValidationError
from repro.graph.generators import powerlaw_temporal_graph
from repro.parallel.executor import START_METHOD_ENV, resolve_start_method, run_batches
from repro.parallel.hare import hare_count
from repro.parallel.pool import (
    WorkerPool,
    close_shared_pools,
    shared_pool,
)
from repro.parallel.scheduler import build_batches
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def fork_pool():
    with WorkerPool(2, "fork", result_cache=False) as pool:
        yield pool


class TestExactness:
    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_pool_equals_serial(self, paper_graph, fork_pool, backend):
        serial = count_motifs(paper_graph, 10)
        result = count_motifs(
            paper_graph, 10, workers=2, pool=fork_pool, backend=backend
        )
        assert result.same_counts(serial)
        assert result.meta["runtime"] == "pool"

    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_random_graphs(self, fork_pool, seed):
        g = random_graph(seed, num_nodes=8, num_edges=45)
        serial = count_motifs(g, 6)
        for backend in ("python", "columnar"):
            result = count_motifs(g, 6, workers=2, pool=fork_pool, backend=backend)
            assert result.same_counts(serial), backend

    def test_categories(self, paper_graph, fork_pool):
        for categories in ("star", "pair", "triangle", "star_pair"):
            serial = count_motifs(paper_graph, 10, categories=categories)
            result = count_motifs(
                paper_graph, 10, categories=categories, workers=2, pool=fork_pool
            )
            assert result.same_counts(serial), categories

    def test_static_schedule(self, paper_graph, fork_pool):
        serial = count_motifs(paper_graph, 10)
        result = hare_count(paper_graph, 10, workers=2, schedule="static", pool=fork_pool)
        assert result == serial

    def test_empty_graph(self, fork_pool):
        from repro.graph.temporal_graph import TemporalGraph

        assert hare_count(TemporalGraph([]), 10, workers=2, pool=fork_pool).total() == 0

    def test_spawn_pool_exact(self, paper_graph):
        serial = count_motifs(paper_graph, 10)
        with WorkerPool(2, "spawn") as pool:
            result = count_motifs(paper_graph, 10, workers=2, pool=pool)
            assert result.same_counts(serial)
            # Resident workers answer the repeat too (cache or not).
            repeat = count_motifs(paper_graph, 10, workers=2, pool=pool)
            assert repeat.same_counts(serial)


class TestReuse:
    def test_graph_published_once_across_requests(self, paper_graph):
        with WorkerPool(2, "fork", result_cache=False) as pool:
            for delta in (4, 7, 10):
                count_motifs(paper_graph, delta, workers=2, pool=pool)
            assert pool.stats["graphs_published"] == 1
            assert pool.stats["jobs"] == 3

    def test_result_cache_hits_identical_requests(self, paper_graph):
        with WorkerPool(2, "fork") as pool:
            first = count_motifs(paper_graph, 10, workers=2, pool=pool)
            again = count_motifs(paper_graph, 10, workers=2, pool=pool)
            assert pool.stats["cache_hits"] == 1
            assert pool.stats["jobs"] == 1
            assert again.same_counts(first)

    def test_cache_distinguishes_different_batch_covers(self, paper_graph):
        """A partial task cover must never be served full-cover counts."""
        with WorkerPool(2, "fork") as pool:
            plan = pool.plan_batches(paper_graph, 2)
            full, _, _ = pool.run_batches(paper_graph, 11.0, plan, backend="python")
            subset, _, _ = pool.run_batches(
                paper_graph, 11.0, plan[:1], backend="python"
            )
            honest, _, _ = pool.run_batches(
                paper_graph, 11.0, plan[:1], backend="python", reuse=False
            )
            assert subset == honest
            assert subset != full
            # ... and the subset result did not poison the full key.
            again, _, _ = pool.run_batches(paper_graph, 11.0, plan, backend="python")
            assert again == full

    def test_reuse_false_forces_execution(self, paper_graph):
        with WorkerPool(2, "fork") as pool:
            batches = pool.plan_batches(paper_graph, 2)
            pool.run_batches(paper_graph, 10, batches, backend="python")
            pool.run_batches(paper_graph, 10, batches, backend="python", reuse=False)
            assert pool.stats["cache_hits"] == 0
            assert pool.stats["jobs"] == 2

    def test_version_bump_invalidates_cache_and_republishes(self, paper_graph):
        with WorkerPool(2, "fork") as pool:
            before = count_motifs(paper_graph, 10, workers=2, pool=pool)
            # Sanctioned in-place mutation: shift every timestamp far
            # apart so no window survives, then invalidate.
            paper_graph._t[:] = np.arange(paper_graph.num_edges) * 1000
            paper_graph.invalidate_caches()
            after = count_motifs(paper_graph, 10, workers=2, pool=pool)
            assert pool.stats["graphs_published"] == 2
            assert not after.same_counts(before)
            assert after.same_counts(count_motifs(paper_graph, 10))

    def test_plan_batches_memoized(self, paper_graph):
        with WorkerPool(2, "fork") as pool:
            plan_a = pool.plan_batches(paper_graph, 2, thrd=5)
            plan_b = pool.plan_batches(paper_graph, 2, thrd=5)
            assert plan_a is plan_b
            plan_c = pool.plan_batches(paper_graph, 2, thrd=None)
            assert plan_c is not plan_a

    def test_pinned_publish_survives_auto_churn(self, paper_graph):
        with WorkerPool(2, "fork", result_cache=False) as pool:
            pool.publish(paper_graph)
            # Churn the auto LRU with throwaway graphs (kept alive so
            # garbage collection is not what evicts them).
            churn = [random_graph(seed, num_nodes=6, num_edges=20) for seed in range(6)]
            for g in churn:
                count_motifs(g, 5, workers=2, pool=pool)
            state = pool._states[id(paper_graph)]
            assert state.pinned and state.handle is not None
            assert pool.stats["graphs_published"] == 7
            # The pinned graph is still served without republication.
            count_motifs(paper_graph, 5, workers=2, pool=pool)
            assert pool.stats["graphs_published"] == 7
            pool.release(paper_graph)
            assert id(paper_graph) not in pool._states

    def test_dead_graph_state_is_reaped(self):
        import gc

        with WorkerPool(2, "fork", result_cache=False) as pool:
            g = random_graph(2, num_nodes=6, num_edges=20)
            count_motifs(g, 5, workers=2, pool=pool)
            key = id(g)
            assert key in pool._states
            del g
            gc.collect()
            assert key not in pool._states


class TestSweepIntegration:
    def test_sweep_without_pool_runtime_algorithms_creates_no_pool(
        self, paper_graph, monkeypatch
    ):
        """EX runs its own fork time-slab farming; a sweep over only
        non-pool-runtime algorithms must not pay WorkerPool startup
        for a pool nothing uses.  (BTS left this club in PR 5: its
        block chunks now execute on the shared-memory pool runtime.)"""
        import repro.parallel.pool as pool_module

        def forbidden(*args, **kwargs):
            raise AssertionError("WorkerPool created for a pool-less sweep")

        monkeypatch.setattr(pool_module, "WorkerPool", forbidden)
        sweep = count_motifs_sweep(
            paper_graph, deltas=(5, 10), algorithms=("ex",), workers=2
        )
        assert len(sweep) == 2

    def test_sweep_with_bts_uses_pool_runtime(self, paper_graph):
        """A workers>1 sweep naming bts rides the sweep-owned pool and
        still reproduces the serial estimate bit for bit."""
        sweep = count_motifs_sweep(
            paper_graph, deltas=(5,), algorithms=("bts",), workers=2, seed=3
        )
        serial = count_motifs_sweep(
            paper_graph, deltas=(5,), algorithms=("bts",), seed=3
        )
        assert np.array_equal(sweep.results[0].grid, serial.results[0].grid)

    def test_sweep_uses_one_pool(self, paper_graph):
        sweep = count_motifs_sweep(
            paper_graph, deltas=(5, 10), algorithms=("fast",), workers=2
        )
        serial = count_motifs_sweep(paper_graph, deltas=(5, 10), algorithms=("fast",))
        for got, want in zip(sweep, serial):
            assert got.same_counts(want)

    def test_sweep_accepts_external_pool(self, paper_graph, fork_pool):
        sweep = count_motifs_sweep(
            paper_graph, deltas=(5, 10), algorithms=("fast",), workers=2,
            pool=fork_pool,
        )
        assert len(sweep) == 2
        assert not fork_pool.closed


class TestLifecycle:
    def test_closed_pool_rejects_work(self, paper_graph):
        pool = WorkerPool(2, "fork")
        pool.close()
        batches = build_batches(paper_graph, 2)
        with pytest.raises(ParallelExecutionError, match="closed"):
            pool.run_batches(paper_graph, 10, batches)

    def test_close_idempotent(self):
        pool = WorkerPool(1, "fork")
        pool.close()
        pool.close()
        assert pool.closed

    def test_invalid_workers(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)

    def test_invalid_backend(self, paper_graph, fork_pool):
        with pytest.raises(ValidationError, match="backend"):
            fork_pool.run_batches(paper_graph, 10, [], backend="gpu")

    def test_invalid_start_method(self):
        with pytest.raises(ValidationError, match="start method"):
            WorkerPool(1, "osthread")

    def test_shared_pool_is_cached_and_replaced_after_close(self):
        try:
            a = shared_pool(2, "fork")
            b = shared_pool(2, "fork")
            assert a is b
            a.close()
            c = shared_pool(2, "fork")
            assert c is not a
            assert not c.closed
        finally:
            close_shared_pools()


class TestRouting:
    def test_env_spawn_routes_through_shared_pool(self, paper_graph, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        try:
            serial = count_motifs(paper_graph, 10)
            result = count_motifs(paper_graph, 10, workers=2)
            assert result.same_counts(serial)
            # Provenance reflects the actual routing, not the absence
            # of an explicit pool argument.
            assert result.meta["runtime"] == "shared-pool"
            pool = shared_pool(2, "spawn")
            assert pool.stats["jobs"] >= 1
        finally:
            close_shared_pools()

    def test_runtime_label_matches_routing(self, paper_graph, fork_pool):
        assert count_motifs(paper_graph, 10).meta.get("runtime") is None  # serial fast
        assert (
            count_motifs(paper_graph, 10, workers=2, start_method="fork").meta["runtime"]
            == "fork-per-call"
        )
        assert (
            count_motifs(paper_graph, 10, workers=2, pool=fork_pool).meta["runtime"]
            == "pool"
        )

    def test_explicit_start_method_argument(self, paper_graph):
        try:
            serial = count_motifs(paper_graph, 10)
            result = count_motifs(paper_graph, 10, workers=2, start_method="spawn")
            assert result.same_counts(serial)
        finally:
            close_shared_pools()

    def test_resolve_start_method_precedence(self, monkeypatch):
        assert resolve_start_method("fork") == "fork"
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert resolve_start_method() == "spawn"
        assert resolve_start_method("fork") == "fork"
        monkeypatch.delenv(START_METHOD_ENV)
        assert resolve_start_method() in ("fork", "spawn")
        with pytest.raises(ValidationError, match="not available"):
            resolve_start_method("no-such-method")

    def test_run_batches_pool_parameter(self, paper_graph, fork_pool):
        batches = build_batches(paper_graph, 2)
        star, pair, tri = run_batches(
            paper_graph, 10, batches, workers=2, pool=fork_pool, backend="columnar"
        )
        star_s, pair_s, tri_s = run_batches(paper_graph, 10, batches, workers=1)
        assert star == star_s and pair == pair_s and tri == tri_s

    def test_single_worker_pool_still_routes_through_pool(self, paper_graph):
        """workers=1 with an explicit pool exercises the resident
        runtime (not a silent in-process fallback) — the scaling
        curve's 1-worker point depends on this."""
        serial = count_motifs(paper_graph, 10)
        with WorkerPool(1, "fork", result_cache=False) as pool:
            result = hare_count(paper_graph, 10, workers=1, pool=pool)
            assert result == serial
            assert pool.stats["jobs"] == 1

    def test_ex_and_bts_honor_non_fork_start_method(self, paper_graph):
        """Fork-only farming must fall back to serial (bit-identically)
        when the caller asks for a non-fork start method, not silently
        fork anyway."""
        for algorithm in ("ex", "bts"):
            kwargs = {} if algorithm == "ex" else {"seed": 5, "n_samples": 1}
            serial = count_motifs(paper_graph, 10, algorithm=algorithm, **kwargs)
            spawned = count_motifs(
                paper_graph, 10, algorithm=algorithm, workers=2,
                start_method="spawn", **kwargs,
            )
            assert np.array_equal(serial.grid, spawned.grid), algorithm


class TestStreamingIntegration:
    def test_engine_owns_and_closes_pool(self):
        from repro.core.registry import StreamRequest, open_stream

        g = powerlaw_temporal_graph(60, 900, seed=3)
        edges = list(g.internal_edges())
        request = StreamRequest(delta=2000.0, workers=2, parallel_min_edges=100)
        with open_stream(request) as engine:
            engine.ingest(edges)
            parallel_counts = engine.counts()
            assert engine._pool is not None
            pool = engine._pool
        assert pool.closed
        assert engine._pool is None
        serial = count_motifs(g, 2000.0)
        assert parallel_counts.same_counts(serial)

    def test_engine_without_parallel_never_creates_pool(self, paper_graph):
        from repro.core.registry import StreamRequest, open_stream

        engine = open_stream(StreamRequest(delta=5.0))
        engine.ingest(list(paper_graph.internal_edges()))
        assert engine._pool is None
        engine.close()
