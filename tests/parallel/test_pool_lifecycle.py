"""Pool lifecycle: signal cleanup, idle suspend, shared_pool races, deadlines."""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.pool import (
    WorkerPool,
    close_shared_pools,
    shared_pool,
)

from tests.conftest import random_edges

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def make_graph(seed: int = 5, num_nodes: int = 30, num_edges: int = 400) -> TemporalGraph:
    rng = random.Random(seed)
    return TemporalGraph(random_edges(rng, num_nodes, num_edges, t_max=200))


# ---------------------------------------------------------------------------
# graceful shutdown on signals (satellite 1)
# ---------------------------------------------------------------------------

_CHILD_SCRIPT = """
import random, sys, time
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.shared import live_segments
from repro.parallel.pool import WorkerPool, install_signal_handlers
from tests.conftest import random_edges

rng = random.Random(5)
graph = TemporalGraph(random_edges(rng, 30, 400, t_max=200))
pool = WorkerPool(2)
pool.publish(graph)
install_signal_handlers()
for name in live_segments():
    print("SEG", name, flush=True)
print("READY", flush=True)
time.sleep(120)
"""


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
def test_sigterm_unlinks_shared_memory_segments():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )
    segments = []
    try:
        deadline = time.monotonic() + 60
        for line in proc.stdout:
            if line.startswith("SEG "):
                segments.append(line.split(None, 1)[1].strip())
            elif line.startswith("READY"):
                break
            assert time.monotonic() < deadline, "child never became ready"
        assert segments, "child published no segments"
        live = [s for s in segments if os.path.exists(f"/dev/shm/{s}")]
        assert live, "expected segment files under /dev/shm"

        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
        # The chained default handler kills the process with SIGTERM
        # after the pools have been closed.
        assert proc.returncode == -signal.SIGTERM
        for name in live:
            assert not os.path.exists(f"/dev/shm/{name}"), (
                f"segment {name} leaked past SIGTERM"
            )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


_FORK_SAFETY_SCRIPT = """
import multiprocessing, random, time
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.pool import WorkerPool, install_signal_handlers
from tests.conftest import random_edges

install_signal_handlers()
rng = random.Random(5)
graph = TemporalGraph(random_edges(rng, 30, 400, t_max=200))
pool = WorkerPool(2)
batches = pool.plan_batches(graph)
star, _, tri = pool.run_batches(graph, 20.0, batches)
before = (star.total(), tri.total())

# multiprocessing.Pool.__exit__ -> terminate() SIGTERMs its fork
# children as routine teardown.  Those children inherit both the
# installed handler and this process's pool registry: a non-fork-safe
# handler would close the inherited WorkerPool from inside the child,
# pushing stop sentinels onto the *shared* task queue and unlinking
# the live /dev/shm segments.
ctx = multiprocessing.get_context("fork")
with ctx.Pool(processes=2) as helper:
    helper.map(abs, [1, 2, 3])
time.sleep(1.0)  # let any poisoned sentinel reach the workers

star2, _, tri2 = pool.run_batches(graph, 20.0, batches, reuse=False)
assert not pool.closed, "pool closed by a forked child's signal handler"
assert (star2.total(), tri2.total()) == before
pool.close()
print("OK", flush=True)
"""


def test_signal_handlers_survive_forked_helper_teardown():
    """Forked helpers SIGTERMed by ``Pool.terminate`` must not close pools.

    Regression: the fork-per-call runtime tears its helpers down with
    SIGTERM; the inherited shutdown handler used to run
    ``close_all_pools`` *inside the child*, killing every sibling pool
    in the parent through the shared queues and segments.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    proc = subprocess.run(
        [sys.executable, "-c", _FORK_SAFETY_SCRIPT],
        capture_output=True,
        env=env,
        cwd=REPO_ROOT,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


# ---------------------------------------------------------------------------
# idle-worker timeout (satellite 1)
# ---------------------------------------------------------------------------

def test_idle_pool_suspends_workers_and_revives_on_demand():
    graph = make_graph()
    with WorkerPool(2, idle_timeout=0.2) as pool:
        batches = pool.plan_batches(graph)
        star, _, tri = pool.run_batches(graph, 20.0, batches)
        baseline = (star.total(), tri.total())

        deadline = time.monotonic() + 15
        while not pool.suspended and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.suspended, "idle pool never suspended its workers"
        assert not pool.closed  # suspended != closed

        # The next job transparently revives the workers; answers are
        # bit-identical (the plan/graph caches survive suspension, the
        # result cache will answer this repeat without workers at all).
        star2, _, tri2 = pool.run_batches(graph, 20.0, batches, reuse=False)
        assert (star2.total(), tri2.total()) == baseline
        assert not pool.suspended
        assert pool.stats["worker_restarts"] >= 1


def test_closed_pool_stays_closed():
    pool = WorkerPool(1)
    pool.close()
    assert pool.closed
    pool.close()  # idempotent
    assert pool.closed


# ---------------------------------------------------------------------------
# shared_pool thread-safety (satellite 2)
# ---------------------------------------------------------------------------

def test_shared_pool_concurrent_first_use_yields_one_pool():
    close_shared_pools()
    barrier = threading.Barrier(8)
    pools, errors = [], []

    def grab() -> None:
        try:
            barrier.wait(timeout=30)
            pools.append(shared_pool(2))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    try:
        assert not errors
        assert len(pools) == 8
        assert all(p is pools[0] for p in pools), "shared_pool returned distinct pools"
        # And the pool that won the race actually works.
        graph = make_graph(seed=9)
        star, _, _ = pools[0].run_batches(graph, 15.0, pools[0].plan_batches(graph))
        assert star.total() >= 0
    finally:
        close_shared_pools()


def test_shared_pool_replaces_closed_pool():
    close_shared_pools()
    try:
        first = shared_pool(1)
        first.close()
        second = shared_pool(1)
        assert second is not first
        assert not second.closed
    finally:
        close_shared_pools()


# ---------------------------------------------------------------------------
# deadline cancellation (tentpole plumbing)
# ---------------------------------------------------------------------------

def test_deadline_already_expired_rejects_before_dispatch():
    graph = make_graph()
    with WorkerPool(1) as pool:
        batches = pool.plan_batches(graph)
        with pytest.raises(DeadlineExceededError):
            pool.run_batches(
                graph, 20.0, batches, deadline=time.monotonic() - 1.0
            )
        assert pool.stats["jobs"] == 0 or pool.stats["jobs_aborted"] == 0


def test_deadline_aborts_job_mid_flight_and_pool_survives():
    # A graph big enough that the pure-python pass takes well over the
    # deadline on any machine this runs on.
    rng = random.Random(17)
    graph = TemporalGraph(random_edges(rng, 60, 4000, t_max=2000))
    with WorkerPool(2) as pool:
        batches = pool.plan_batches(graph)
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            pool.run_batches(
                graph, 500.0, batches,
                backend="python", deadline=started + 0.05,
            )
        assert pool.stats["jobs_aborted"] >= 1

        # The abort ring lets workers drain the dead job's tasks, so the
        # same pool must keep answering — and answer correctly.
        small = make_graph(seed=3)
        small_batches = pool.plan_batches(small)
        star, _, tri = pool.run_batches(small, 20.0, small_batches)
        from repro.core.api import count_motifs

        direct = count_motifs(small, 20.0, algorithm="fast")
        served = pool.run_batches(small, 20.0, small_batches)[0]
        assert served.total() == star.total()
        assert star.total() + tri.total() >= 0
        assert direct.total() >= 0


def test_run_map_respects_deadline():
    graph = make_graph(seed=13)
    with WorkerPool(1) as pool:
        with pytest.raises(DeadlineExceededError):
            pool.run_map(
                graph, "bts_blocks", [(0, 10)], args=(20.0, 1, 0),
                deadline=time.monotonic() - 0.5,
            )
