"""Shared fixtures and graph builders for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.graph.temporal_graph import TemporalGraph


def random_edges(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    t_max: int = 20,
) -> List[Tuple[int, int, int]]:
    """Random directed edges without self-loops, heavy timestamp ties."""
    edges = []
    for _ in range(num_edges):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        while v == u:
            v = rng.randrange(num_nodes)
        edges.append((u, v, rng.randint(0, t_max)))
    return edges


def random_graph(seed: int, num_nodes: int = 6, num_edges: int = 25, t_max: int = 20) -> TemporalGraph:
    rng = random.Random(seed)
    return TemporalGraph(random_edges(rng, num_nodes, num_edges, t_max))


@pytest.fixture
def paper_graph() -> TemporalGraph:
    """The temporal graph of the paper's Fig. 1 (5 nodes, 12 edges)."""
    return TemporalGraph(
        [
            ("a", "c", 4), ("a", "c", 8), ("d", "a", 9), ("a", "b", 11), ("a", "c", 15),
            ("e", "d", 1), ("e", "c", 6), ("d", "c", 10), ("d", "e", 14), ("c", "d", 17),
            ("e", "d", 18), ("d", "e", 21),
        ]
    )


@pytest.fixture
def tiny_pair_graph() -> TemporalGraph:
    """Two nodes exchanging four messages: pair motifs only."""
    return TemporalGraph([(0, 1, 0), (1, 0, 2), (0, 1, 4), (1, 0, 6)])


@pytest.fixture
def triangle_graph() -> TemporalGraph:
    """A single temporal cycle a->b->c->a (one M26 instance)."""
    return TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 0, 3)])
