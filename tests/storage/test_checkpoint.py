"""Crash-safe streaming checkpoints: resume equivalence + corruption.

Three contracts:

* **resume equivalence** — an engine checkpointed mid-replay and
  resumed in a fresh process emits checkpoint lines bit-identical to
  an uninterrupted replay, including a real ``repro stream`` process
  SIGKILLed at an arbitrary point;
* **corruption is typed** — a journal or snapshot truncated or
  bit-flipped at any offset (hypothesis-driven) raises
  :class:`~repro.errors.CheckpointCorruptError` from ``resume_from``
  before any engine state is built, never a silent partial resume;
* **atomicity hygiene** — checkpoint writes leave no ``*.tmp-*``
  litter and prune superseded snapshots.
"""

from __future__ import annotations

import glob
import json
import os
import random
import signal
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import StreamRequest, open_stream
from repro.core.streaming import StreamingMotifEngine
from repro.errors import CheckpointCorruptError, ValidationError
from repro.storage import checkpoint as ckpt
from repro.testing.faults import bitflip_file, truncate_file

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def stream_edges(seed: int = 7, n: int = 800, num_nodes: int = 60, t_max: int = 400):
    """A deterministic in-order edge stream with timestamp ties."""
    rng = random.Random(seed)
    times = sorted(rng.randrange(t_max) for _ in range(n))
    return [
        (rng.randrange(num_nodes), rng.randrange(num_nodes), float(t))
        for t in times
    ]


def request(**overrides) -> StreamRequest:
    kwargs = dict(delta=10.0, window=80.0, checkpoint_every=100)
    kwargs.update(overrides)
    return StreamRequest(**kwargs)


def canon(line) -> str:
    """One checkpoint line with wall-clock fields stripped.

    ``phase_seconds`` (and the phase name derived from it) are timing
    telemetry; the bit-identical contract covers every *count and
    progress* field."""
    payload = line if isinstance(line, dict) else json.loads(line)
    payload.pop("phase_seconds", None)
    payload.pop("dominant_phase", None)
    return json.dumps(payload, sort_keys=True)


def replay_lines(engine, edges) -> list:
    return [canon(cp.as_dict()) for cp in engine.replay(edges)]


def checkpoint_dir_with_state(tmp_path, *, upto: int = 400) -> str:
    """Replay ``upto`` edges, write one checkpoint, return the dir."""
    directory = str(tmp_path / "ckpt")
    engine = open_stream(request())
    for _ in engine.replay(stream_edges()[:upto]):
        pass
    engine.checkpoint_to(directory)
    return directory


# ----------------------------------------------------------------------
# resume equivalence
# ----------------------------------------------------------------------

def test_resume_mid_stream_is_bit_identical(tmp_path):
    edges = stream_edges()
    baseline = replay_lines(open_stream(request()), edges)

    directory = str(tmp_path / "ckpt")
    first = open_stream(request())
    interrupted = []
    for cp in first.replay(edges):
        interrupted.append(canon(cp.as_dict()))
        first.checkpoint_to(directory)
        if cp.seq == 3:
            break  # simulated crash: committed state stops here

    resumed = StreamingMotifEngine.resume_from(directory, request=request())
    skip = resumed.records_consumed()
    assert skip == first.records_consumed()
    tail = replay_lines(resumed, edges[skip:])
    assert interrupted[:4] + tail == baseline, (
        "resumed replay diverged from the uninterrupted run"
    )


def test_resume_rejects_mismatched_request(tmp_path):
    directory = checkpoint_dir_with_state(tmp_path)
    with pytest.raises(ValidationError):
        StreamingMotifEngine.resume_from(directory, request=request(delta=99.0))


def test_checkpoint_writes_are_atomic_and_pruned(tmp_path):
    directory = str(tmp_path / "ckpt")
    engine = open_stream(request())
    edges = stream_edges()
    seqs = []
    for cp in engine.replay(edges):
        engine.checkpoint_to(directory)
        seqs.append(cp.seq)
    snapshots = glob.glob(os.path.join(directory, "window-*.rgz"))
    assert len(snapshots) == 1, "superseded snapshots were not pruned"
    assert os.path.basename(snapshots[0]) == ckpt.snapshot_name(seqs[-1])
    assert not glob.glob(os.path.join(directory, "*.tmp-*")), (
        "checkpoint writes leaked temp files"
    )
    assert ckpt.has_checkpoint(directory)


# ----------------------------------------------------------------------
# SIGKILL a real `repro stream` process, resume, compare
# ----------------------------------------------------------------------

def stream_cmd(input_path, directory, *extra):
    return [
        sys.executable, "-m", "repro.cli", "stream",
        "--input", input_path, "--delta", "10", "--window", "80",
        "--checkpoint-every", "100", "--checkpoint-dir", directory,
        *extra,
    ]


def test_sigkilled_stream_resumes_bit_identical(tmp_path):
    input_path = str(tmp_path / "edges.tsv")
    with open(input_path, "w") as handle:
        for src, dst, t in stream_edges(n=5000, t_max=2500):
            handle.write(f"{src}\t{dst}\t{t}\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")

    baseline = subprocess.run(
        stream_cmd(input_path, str(tmp_path / "base")),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )
    assert baseline.returncode == 0, baseline.stderr
    expected = [canon(line) for line in baseline.stdout.splitlines()]
    assert len(expected) >= 20, "stream too short to interrupt meaningfully"

    directory = str(tmp_path / "ckpt")
    victim = subprocess.Popen(
        stream_cmd(input_path, directory),
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, cwd=REPO_ROOT, text=True,
    )
    # Kill after a few checkpoint lines: mid-run, at whatever commit
    # boundary the scheduler lands on — resume must cope with any.
    seen = []
    for line in victim.stdout:
        seen.append(canon(line.rstrip("\n")))
        if len(seen) == 3:
            os.kill(victim.pid, signal.SIGKILL)
            break
    victim.wait(timeout=30)
    victim.stdout.close()
    assert len(seen) == 3, "victim died before reaching three checkpoints"

    resumed = subprocess.run(
        stream_cmd(input_path, directory, "--resume"),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    tail = [canon(line) for line in resumed.stdout.splitlines()]
    # The committed prefix (lines up to the last on-disk checkpoint —
    # the victim may have raced a little past what we read) plus the
    # resumed tail must equal the uninterrupted run exactly.
    assert tail, "victim finished before the kill landed; nothing resumed"
    committed = len(expected) - len(tail)
    assert committed > 0, "no checkpoint was committed before the kill"
    assert seen == expected[:3]
    assert expected[committed:] == tail, (
        "resumed stream output diverged from the uninterrupted run"
    )


def test_resume_without_checkpoint_starts_fresh(tmp_path):
    input_path = str(tmp_path / "edges.tsv")
    with open(input_path, "w") as handle:
        for src, dst, t in stream_edges(n=300):
            handle.write(f"{src}\t{dst}\t{t}\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    directory = str(tmp_path / "empty-ckpt")
    result = subprocess.run(
        stream_cmd(input_path, directory, "--resume"),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert len(result.stdout.splitlines()) >= 1


# ----------------------------------------------------------------------
# corruption (hypothesis-driven)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def committed(tmp_path_factory):
    """One committed checkpoint dir, copied per corruption example."""
    base = tmp_path_factory.mktemp("committed")
    directory = checkpoint_dir_with_state(base)
    journal = ckpt.journal_path(directory)
    snapshot = glob.glob(os.path.join(directory, "window-*.rgz"))[0]
    return directory, journal, snapshot


def corrupted_copy(committed, tmp_path_factory):
    import shutil

    directory, _, _ = committed
    clone = str(tmp_path_factory.mktemp("corrupt") / "ckpt")
    shutil.copytree(directory, clone)
    journal = ckpt.journal_path(clone)
    snapshot = glob.glob(os.path.join(clone, "window-*.rgz"))[0]
    return clone, journal, snapshot


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_truncated_journal_raises_typed(committed, tmp_path_factory, data):
    clone, journal, _ = corrupted_copy(committed, tmp_path_factory)
    size = os.path.getsize(journal)
    # Dropping only the final newline is legal by design; anything
    # shorter must be rejected.
    keep = data.draw(st.integers(min_value=0, max_value=size - 2))
    truncate_file(journal, keep)
    with pytest.raises(CheckpointCorruptError):
        StreamingMotifEngine.resume_from(clone)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bitflipped_journal_raises_typed(committed, tmp_path_factory, data):
    clone, journal, _ = corrupted_copy(committed, tmp_path_factory)
    size = os.path.getsize(journal)
    offset = data.draw(st.integers(min_value=0, max_value=size - 1))
    mask = data.draw(st.integers(min_value=1, max_value=255))
    bitflip_file(journal, offset, mask)
    with pytest.raises(CheckpointCorruptError):
        StreamingMotifEngine.resume_from(clone)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_truncated_snapshot_raises_typed(committed, tmp_path_factory, data):
    clone, _, snapshot = corrupted_copy(committed, tmp_path_factory)
    size = os.path.getsize(snapshot)
    keep = data.draw(st.integers(min_value=0, max_value=size - 1))
    truncate_file(snapshot, keep)
    with pytest.raises(CheckpointCorruptError):
        StreamingMotifEngine.resume_from(clone)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_bitflipped_snapshot_raises_typed(committed, tmp_path_factory, data):
    clone, _, snapshot = corrupted_copy(committed, tmp_path_factory)
    size = os.path.getsize(snapshot)
    offset = data.draw(st.integers(min_value=0, max_value=size - 1))
    mask = data.draw(st.integers(min_value=1, max_value=255))
    bitflip_file(snapshot, offset, mask)
    with pytest.raises(CheckpointCorruptError):
        StreamingMotifEngine.resume_from(clone)


def test_missing_snapshot_raises_typed(committed, tmp_path_factory):
    clone, _, snapshot = corrupted_copy(committed, tmp_path_factory)
    os.remove(snapshot)
    with pytest.raises(CheckpointCorruptError):
        StreamingMotifEngine.resume_from(clone)


def test_corrupt_resume_leaves_no_partial_state(committed, tmp_path_factory):
    """A failed resume must not have mutated anything reusable."""
    clone, journal, _ = corrupted_copy(committed, tmp_path_factory)
    truncate_file(journal, os.path.getsize(journal) // 2)
    for _ in range(2):  # repeatable: no partially-built engine cached
        with pytest.raises(CheckpointCorruptError):
            StreamingMotifEngine.resume_from(clone)
    # The pristine original is untouched and still resumes cleanly.
    directory, _, _ = committed
    engine = StreamingMotifEngine.resume_from(directory)
    assert engine.records_consumed() > 0
