"""Property suite for the packed binary format.

Two contracts:

* **round trip** — for arbitrary random graphs (timestamp ties,
  multi-edges, empty graphs, float timestamps), pack → mmap-open
  reproduces every edge column and every derived columnar array
  bit-identically, and counts over the reopened graph match the
  original on exact and fixed-seed sampling algorithms alike;
* **corruption** — a damaged file (truncation anywhere, bad magic,
  version skew, header bit-flips, NaN/unsorted timestamps or
  out-of-range ids smuggled into the binary sections) raises a typed
  :mod:`repro.errors` exception at open time, never garbage counts.
"""

import os
import struct

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.api import count_motifs
from repro.errors import (
    ReproError,
    StorageFormatError,
    StorageVersionError,
    ValidationError,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.storage.format import (
    DERIVED_SECTIONS,
    EDGE_SECTIONS,
    FORMAT_VERSION,
    MAGIC,
    is_packed_file,
    open_packed,
    pack_graph,
    read_header,
    section_span,
)
from tests.conftest import random_graph
from tests.core.test_properties import temporal_graphs


def _sample_graph():
    return random_graph(seed=9, num_nodes=12, num_edges=120, t_max=40)


def _float_graph():
    return TemporalGraph([(0, 1, 0.5), (1, 2, 1.25), (0, 2, 2.75), (2, 0, 3.5)])


def _corrupt(path, offset: int, data: bytes) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(data)


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(graph=temporal_graphs(max_edges=24))
    def test_columns_and_csr_bit_identical(self, graph, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("rt") / "g.rgz")
        pack_graph(graph, path)
        packed = open_packed(path)
        reference = graph.columnar()
        reopened = packed.graph.columnar()
        for name in EDGE_SECTIONS + DERIVED_SECTIONS:
            ref = getattr(reference, name)
            got = getattr(reopened, name)
            assert got.dtype == ref.dtype and np.array_equal(got, ref), name
        assert reopened.num_nodes == reference.num_nodes
        assert reopened.num_edges == reference.num_edges
        assert reopened.pair_bloom_bits == reference.pair_bloom_bits

    @settings(max_examples=10, deadline=None)
    @given(graph=temporal_graphs(max_edges=20))
    def test_counts_identical_after_reopen(self, graph, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("rt") / "g.rgz")
        pack_graph(graph, path)
        packed = open_packed(path)
        for delta in (0, 7):
            a = count_motifs(graph, delta)
            b = count_motifs(packed.graph, delta)
            assert a.same_counts(b), delta
        a = count_motifs(graph, 7, algorithm="bts", seed=3, n_samples=2)
        b = count_motifs(packed.graph, 7, algorithm="bts", seed=3, n_samples=2)
        assert np.array_equal(a.grid, b.grid)

    def test_edges_layout_round_trip(self, tmp_path):
        graph = _sample_graph()
        path = str(tmp_path / "edges.rgz")
        header = pack_graph(graph, path, layout="edges")
        assert header["layout"] == "edges"
        assert {s["name"] for s in header["sections"]} == set(EDGE_SECTIONS)
        packed = open_packed(path)
        reference = graph.columnar()
        reopened = packed.graph.columnar()  # rebuilt lazily, not mmapped
        for name in DERIVED_SECTIONS:
            assert np.array_equal(getattr(reopened, name), getattr(reference, name))

    def test_float_timestamps_round_trip(self, tmp_path):
        graph = _float_graph()
        path = str(tmp_path / "float.rgz")
        pack_graph(graph, path)
        packed = open_packed(path)
        assert packed.graph.timestamps.dtype == np.float64
        assert np.array_equal(packed.graph.timestamps, graph.timestamps)
        assert count_motifs(packed.graph, 2.5).same_counts(count_motifs(graph, 2.5))

    def test_empty_graph_round_trip(self, tmp_path):
        path = str(tmp_path / "empty.rgz")
        pack_graph(TemporalGraph([]), path)
        packed = open_packed(path)
        assert packed.num_edges == 0
        assert count_motifs(packed.graph, 5).total() == 0

    def test_zero_copy_views_into_mapping(self, tmp_path):
        graph = _sample_graph()
        path = str(tmp_path / "g.rgz")
        pack_graph(graph, path)
        packed = open_packed(path)
        src = packed.graph.sources
        assert not src.flags.owndata and not src.flags.writeable
        col = packed.graph.columnar()
        assert not col.inc_indptr.flags.owndata

    def test_pack_is_atomic_no_temp_left(self, tmp_path):
        path = str(tmp_path / "g.rgz")
        pack_graph(_sample_graph(), path)
        assert is_packed_file(path)
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp-" in f]
        assert not leftovers

    def test_header_describes_file(self, tmp_path):
        path = str(tmp_path / "g.rgz")
        graph = _sample_graph()
        written = pack_graph(graph, path)
        header = read_header(path)
        assert header == written
        assert header["num_edges"] == graph.num_edges
        assert header["num_nodes"] == graph.num_nodes

    def test_pack_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(ValidationError):
            pack_graph("not a graph", str(tmp_path / "x.rgz"))
        with pytest.raises(ValidationError):
            pack_graph(_sample_graph(), str(tmp_path / "x.rgz"), layout="spiral")


# ----------------------------------------------------------------------
# corruption: typed errors, never garbage counts
# ----------------------------------------------------------------------
@pytest.fixture()
def packed_path(tmp_path):
    path = str(tmp_path / "victim.rgz")
    pack_graph(_sample_graph(), path)
    return path


class TestCorruption:
    def test_truncation_anywhere_raises(self, packed_path):
        size = os.path.getsize(packed_path)
        blob = open(packed_path, "rb").read()
        # Preamble, header, first section, and last-byte truncations.
        for cut in (0, 5, 23, 40, size // 2, size - 1):
            with open(packed_path, "wb") as fh:
                fh.write(blob[:cut])
            with pytest.raises(StorageFormatError):
                open_packed(packed_path)

    def test_bad_magic(self, packed_path):
        _corrupt(packed_path, 0, b"NOTAPACK")
        with pytest.raises(StorageFormatError, match="magic"):
            open_packed(packed_path)

    def test_endian_sentinel_mismatch(self, packed_path):
        _corrupt(packed_path, len(MAGIC), struct.pack("<H", 0x3412))
        with pytest.raises(StorageFormatError, match="endian"):
            open_packed(packed_path)

    def test_version_skew(self, packed_path):
        _corrupt(packed_path, len(MAGIC) + 2, struct.pack("<H", FORMAT_VERSION + 9))
        with pytest.raises(StorageVersionError, match="re-pack"):
            open_packed(packed_path)

    def test_version_error_is_format_error(self):
        assert issubclass(StorageVersionError, StorageFormatError)
        assert issubclass(StorageFormatError, ReproError)
        assert issubclass(StorageFormatError, ValueError)

    def test_header_bitflip_fails_crc(self, packed_path):
        _corrupt(packed_path, 30, b"X")
        with pytest.raises(StorageFormatError, match="CRC|JSON|field|section"):
            open_packed(packed_path)

    def test_nonfinite_timestamps_in_binary(self, tmp_path):
        path = str(tmp_path / "float.rgz")
        pack_graph(_float_graph(), path)
        offset, _ = section_span(path, "t")
        _corrupt(path, offset, struct.pack("<d", float("nan")))
        with pytest.raises(StorageFormatError, match="finite"):
            open_packed(path)

    def test_unsorted_timestamps_in_binary(self, packed_path):
        offset, _ = section_span(packed_path, "t")
        _corrupt(packed_path, offset, struct.pack("<q", 2**40))
        with pytest.raises(StorageFormatError, match="sorted"):
            open_packed(packed_path)

    def test_out_of_range_node_id(self, packed_path):
        offset, _ = section_span(packed_path, "src")
        _corrupt(packed_path, offset, struct.pack("<q", 10**6))
        with pytest.raises(StorageFormatError, match="out of range"):
            open_packed(packed_path)

    def test_negative_node_id(self, packed_path):
        offset, _ = section_span(packed_path, "dst")
        _corrupt(packed_path, offset, struct.pack("<q", -3))
        with pytest.raises(StorageFormatError, match="out of range"):
            open_packed(packed_path)

    def test_smuggled_self_loop(self, packed_path):
        src_off, _ = section_span(packed_path, "src")
        dst_off, _ = section_span(packed_path, "dst")
        with open(packed_path, "rb") as fh:
            fh.seek(src_off)
            first_src = fh.read(8)
        _corrupt(packed_path, dst_off, first_src)
        with pytest.raises(StorageFormatError, match="self-loop"):
            open_packed(packed_path)

    def test_corrupt_csr_structure(self, packed_path):
        offset, _ = section_span(packed_path, "inc_indptr")
        _corrupt(packed_path, offset, struct.pack("<q", 99))
        with pytest.raises(StorageFormatError, match="CSR"):
            open_packed(packed_path)

    def test_corrupt_eid_index(self, packed_path):
        offset, _ = section_span(packed_path, "inc_eid")
        _corrupt(packed_path, offset, struct.pack("<q", 10**9))
        with pytest.raises(StorageFormatError, match="indices outside"):
            open_packed(packed_path)

    def test_is_packed_file_sniffing(self, packed_path, tmp_path):
        assert is_packed_file(packed_path)
        text = tmp_path / "edges.txt"
        text.write_text("0 1 2\n")
        assert not is_packed_file(str(text))
        assert not is_packed_file(str(tmp_path / "missing.rgz"))

    def test_plain_text_file_rejected(self, tmp_path):
        text = str(tmp_path / "edges.txt")
        with open(text, "w") as fh:
            fh.write("0 1 2\n1 2 3\n")
        with pytest.raises(StorageFormatError):
            open_packed(text)
