"""Shard-equivalence properties: halo-unioned counts == whole-graph counts.

The correctness pin for :mod:`repro.storage.sharded`: for *random* δ
and *random* shard boundaries, the ΣS − ΣH halo union must be
bit-identical to the whole-graph count on every registered algorithm —
the four full-grid exact algorithms and ``twoscent`` through the
per-slice decomposition, and the fixed-seed ``bts``/``ews`` estimates
through the documented whole-graph passthrough.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.api import count_motifs
from repro.core.registry import CountRequest, execute
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import ShardedGraph, open_packed, pack_graph
from tests.conftest import random_graph
from tests.core.test_properties import deltas, temporal_graphs

EXACT = ("fast", "ex", "bruteforce", "bt", "twoscent")
SAMPLING = ("bts", "ews")


def _draw_boundaries(data, m):
    """Random interior cut points for a graph with ``m`` edges."""
    if m < 2:
        return []
    k = data.draw(st.integers(min_value=0, max_value=min(4, m - 1)))
    return sorted(
        data.draw(
            st.sets(st.integers(1, m - 1), min_size=k, max_size=k)
        )
    )


class TestHaloUnionEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(graph=temporal_graphs(max_edges=22), delta=deltas, data=st.data())
    def test_random_boundaries_all_exact_algorithms(self, graph, delta, data):
        cuts = _draw_boundaries(data, graph.num_edges)
        sharded = (
            ShardedGraph(graph, boundaries=cuts)
            if cuts
            else ShardedGraph(graph, num_shards=1)
        )
        for algorithm in EXACT:
            whole = count_motifs(graph, delta, algorithm=algorithm)
            pieces = sharded.count(delta, algorithm=algorithm)
            assert np.array_equal(whole.grid, pieces.grid), (algorithm, cuts)
            assert pieces.is_exact

    @settings(max_examples=12, deadline=None)
    @given(graph=temporal_graphs(max_edges=22), delta=deltas, data=st.data())
    def test_random_boundaries_fixed_seed_sampling(self, graph, delta, data):
        cuts = _draw_boundaries(data, graph.num_edges)
        sharded = (
            ShardedGraph(graph, boundaries=cuts)
            if cuts
            else ShardedGraph(graph, num_shards=1)
        )
        for algorithm in SAMPLING:
            whole = count_motifs(
                graph, delta, algorithm=algorithm, seed=11, n_samples=2
            )
            pieces = sharded.count(
                delta, algorithm=algorithm, seed=11, n_samples=2
            )
            assert np.array_equal(whole.grid, pieces.grid), algorithm
            assert "sharding" in pieces.meta

    @settings(max_examples=10, deadline=None)
    @given(graph=temporal_graphs(max_edges=24), delta=deltas,
           budget=st.integers(min_value=1, max_value=30))
    def test_budget_sharding_matches(self, graph, delta, budget):
        whole = count_motifs(graph, delta)
        pieces = ShardedGraph(graph, max_shard_edges=budget).count(delta)
        assert np.array_equal(whole.grid, pieces.grid), budget

    def test_backends_and_categories_through_shards(self):
        graph = random_graph(seed=2, num_nodes=10, num_edges=80, t_max=30)
        sharded = ShardedGraph(graph, max_shard_edges=17)
        for backend in ("python", "columnar"):
            for categories in ("all", "star", "pair", "triangle", "star_pair"):
                whole = count_motifs(
                    graph, 9, backend=backend, categories=categories
                )
                pieces = sharded.count(9, backend=backend, categories=categories)
                assert np.array_equal(whole.grid, pieces.grid), (backend, categories)

    def test_parallel_slices_match(self):
        graph = random_graph(seed=6, num_nodes=10, num_edges=90, t_max=40)
        whole = count_motifs(graph, 12)
        pieces = ShardedGraph(graph, max_shard_edges=25).count(
            12, workers=2, start_method="fork"
        )
        assert np.array_equal(whole.grid, pieces.grid)


class TestPlanning:
    def test_plan_partitions_and_respects_budget(self):
        graph = random_graph(seed=4, num_nodes=10, num_edges=103, t_max=50)
        sharded = ShardedGraph(graph, max_shard_edges=20)
        plan = sharded.plan(7)
        assert plan[0].own_lo == 0
        assert plan[-1].own_hi == graph.num_edges
        assert plan[-1].halo_hi == graph.num_edges
        t = graph.timestamps
        for a, b in zip(plan, plan[1:]):
            assert a.own_hi == b.own_lo  # own ranges partition [0, m)
        for shard in plan:
            assert 0 < shard.own_edges <= 20
            assert shard.halo_hi >= shard.own_hi
            if shard.halo_edges:
                # Every halo edge is inside the δ-window of some own edge.
                assert t[shard.halo_hi - 1] <= t[shard.own_hi - 1] + 7

    def test_num_shards_split(self):
        graph = random_graph(seed=4, num_nodes=8, num_edges=40, t_max=20)
        sharded = ShardedGraph(graph, num_shards=4)
        assert sharded.num_shards == 4
        assert sum(s.own_edges for s in sharded.plan(3)) == 40

    def test_sharded_over_packed_graph(self, tmp_path):
        graph = random_graph(seed=8, num_nodes=12, num_edges=100, t_max=35)
        path = str(tmp_path / "g.rgz")
        pack_graph(graph, path)
        packed = open_packed(path)
        whole = count_motifs(graph, 10)
        pieces = ShardedGraph(packed, max_shard_edges=30).count(10)
        assert np.array_equal(whole.grid, pieces.grid)
        assert pieces.meta["sharding"] == "halo-union"

    def test_meta_provenance(self):
        graph = random_graph(seed=1, num_nodes=8, num_edges=50, t_max=25)
        result = ShardedGraph(graph, max_shard_edges=13).count(6)
        meta = result.meta
        assert meta["sharding"] == "halo-union"
        assert meta["shards"] == 4
        assert meta["shard_budget"] == 13
        assert meta["halo_edges"] >= 0
        assert meta["slice_runs"] >= meta["shards"]
        assert meta["max_slice_edges"] <= 13 + meta["halo_edges"]

    def test_registry_shard_budget_routing(self):
        graph = random_graph(seed=3, num_nodes=9, num_edges=70, t_max=30)
        whole = execute(CountRequest(graph=graph, delta=8.0))
        routed = execute(CountRequest(graph=graph, delta=8.0, shard_budget=15))
        assert np.array_equal(whole.grid, routed.grid)
        assert routed.meta["sharding"] == "halo-union"

    def test_empty_and_tiny_graphs(self):
        assert ShardedGraph(TemporalGraph([]), max_shard_edges=5).count(3).total() == 0
        tiny = TemporalGraph([(0, 1, 0), (1, 2, 1)])
        assert ShardedGraph(tiny, num_shards=5).count(3).total() == 0


class TestValidation:
    def test_bad_boundaries(self):
        graph = random_graph(seed=0, num_nodes=6, num_edges=20, t_max=10)
        for bad in ([0], [20], [5, 5], [7, 3], [-1]):
            with pytest.raises(ValidationError):
                ShardedGraph(graph, boundaries=bad)

    def test_conflicting_specs(self):
        graph = random_graph(seed=0, num_nodes=6, num_edges=20, t_max=10)
        with pytest.raises(ValidationError):
            ShardedGraph(graph, max_shard_edges=5, num_shards=2)

    def test_bad_budget_and_shards(self):
        graph = random_graph(seed=0, num_nodes=6, num_edges=20, t_max=10)
        with pytest.raises(ValidationError):
            ShardedGraph(graph, max_shard_edges=0)
        with pytest.raises(ValidationError):
            ShardedGraph(graph, num_shards=0)
        with pytest.raises(ValidationError):
            ShardedGraph("nope")
        with pytest.raises(ValidationError):
            ShardedGraph(graph).plan(-1)

    def test_request_validation(self):
        graph = random_graph(seed=0, num_nodes=6, num_edges=20, t_max=10)
        with pytest.raises(ValidationError):
            CountRequest(graph=graph, delta=5.0, shard_budget=0)
        with pytest.raises(ValidationError):
            CountRequest(delta=5.0)  # neither graph nor source
