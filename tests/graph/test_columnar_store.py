"""The columnar edge store: CSR views, windows, pair slices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.temporal_graph import TemporalGraph
from tests.conftest import random_graph


class TestIncidenceCSR:
    @pytest.mark.parametrize("seed", range(6))
    def test_node_slices_match_sequences(self, seed):
        g = random_graph(seed, num_nodes=7, num_edges=30)
        col = g.columnar()
        for u in range(g.num_nodes):
            seq = g.node_sequence(u)
            times, nbrs, dirs, eids = col.node_slice(u)
            assert list(times) == seq.times
            assert list(nbrs) == seq.nbrs
            assert list(dirs) == seq.dirs
            assert list(eids) == seq.eids

    def test_degrees_match(self, paper_graph):
        col = paper_graph.columnar()
        assert list(col.degrees()) == list(paper_graph.degrees())

    def test_cached_and_read_only(self, paper_graph):
        col = paper_graph.columnar()
        assert paper_graph.columnar() is col
        with pytest.raises(ValueError):
            col.src[0] = 99
        with pytest.raises(ValueError):
            col.inc_nbr[0] = 99


class TestPairCSR:
    @pytest.mark.parametrize("seed", range(6))
    def test_pair_slices_match_timelines(self, seed):
        g = random_graph(seed, num_nodes=6, num_edges=25)
        col = g.columnar()
        for a, b in g.static_pairs():
            times, dirs, eids = col.pair_slice(a, b)
            exp_times, exp_dirs, exp_eids = g.pair_timeline(a, b)
            assert list(times) == exp_times
            assert list(dirs) == exp_dirs
            assert list(eids) == exp_eids

    def test_missing_pair_is_empty(self):
        g = TemporalGraph([(0, 1, 1), (2, 3, 2)])
        col = g.columnar()
        times, dirs, eids = col.pair_slice(0, 3)
        assert len(times) == len(dirs) == len(eids) == 0
        assert col.pair_slot(0, 3) == -1

    def test_bloom_covers_all_pairs(self, paper_graph):
        col = paper_graph.columnar()
        assert bool(col.pair_bloom[col.bloom_hash(col.pair_keys)].all())


class TestWindows:
    def test_window_bounds(self, paper_graph):
        col = paper_graph.columnar()
        lo, hi = col.window(6, 11)
        t = col.t[lo:hi]
        assert (t >= 6).all() and (t <= 11).all()
        # One edge before, one after, both excluded.
        assert lo > 0 and hi < paper_graph.num_edges

    def test_edge_slice_is_view(self, paper_graph):
        col = paper_graph.columnar()
        src, dst, t = col.edge_slice(2, 7)
        assert src.base is not None  # zero-copy view, not a copy
        assert len(src) == len(dst) == len(t) == 5

    def test_empty_graph(self):
        col = TemporalGraph([]).columnar()
        assert col.window(0, 10) == (0, 0)
        assert col.degrees().shape == (0,)


class TestCanonicalInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_eid_is_time_rank(self, seed):
        """Canonical ids double as time ranks (the kernels rely on it)."""
        g = random_graph(seed, num_nodes=6, num_edges=30, t_max=8)
        col = g.columnar()
        assert (np.diff(col.t) >= 0).all()
        # Incidence rows are eid-ascending inside each center.
        for u in range(g.num_nodes):
            _, _, _, eids = col.node_slice(u)
            assert (np.diff(eids) > 0).all()
        # Pair groups are eid-ascending inside each slot.
        for slot in range(len(col.pair_keys)):
            lo, hi = col.pair_indptr[slot], col.pair_indptr[slot + 1]
            assert (np.diff(col.pair_eid[lo:hi]) > 0).all()
