"""Tests for SNAP-format edge list IO."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graph.edgelist import iter_edge_records, load_edgelist, save_edgelist
from repro.graph.temporal_graph import TemporalGraph


class TestLoading:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 10\n1 2 20\n")
        g = load_edgelist(path)
        assert g.num_edges == 2
        assert g.timestamps.tolist() == [10, 20]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% other comment\n\n0 1 10\n")
        g = load_edgelist(path)
        assert g.num_edges == 1

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 10 weight=3\n")
        assert load_edgelist(path).num_edges == 1

    def test_tabs_and_spaces(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\t10\n2  3  20\n")
        assert load_edgelist(path).num_edges == 2

    def test_float_timestamps(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 10.5\n")
        g = load_edgelist(path)
        assert g.timestamps.tolist() == [10.5]

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1 10\n1 2 20\n")
        assert load_edgelist(path).num_edges == 2

    def test_self_loop_policy_forwarded(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("5 5 1\n5 6 2\n")
        g = load_edgelist(path)
        assert g.num_edges == 1
        assert g.num_self_loops_dropped == 1


class TestMalformedInput:
    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="expected 'u v t'"):
            load_edgelist(path)

    def test_non_integer_node(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob 10\n")
        with pytest.raises(GraphFormatError, match="node ids must be integers"):
            load_edgelist(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 noon\n")
        with pytest.raises(GraphFormatError, match="timestamp"):
            load_edgelist(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1\nbroken\n")
        with pytest.raises(GraphFormatError, match=":2:"):
            load_edgelist(path)

    def test_iter_edge_records_lazy(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1\nbroken\n")
        records = iter_edge_records(path)
        assert next(records) == (0, 1, 1)  # first record fine before error


class TestSaving:
    def test_roundtrip(self, tmp_path):
        g = TemporalGraph([(0, 1, 5), (2, 3, 1), (1, 0, 5)])
        path = tmp_path / "out.txt"
        save_edgelist(g, path)
        assert load_edgelist(path) == g

    def test_gzip_write(self, tmp_path):
        g = TemporalGraph([(0, 1, 5)])
        path = tmp_path / "out.txt.gz"
        save_edgelist(g, path)
        assert load_edgelist(path) == g

    def test_canonical_order_written(self, tmp_path):
        g = TemporalGraph([(0, 1, 9), (1, 2, 3)])
        path = tmp_path / "out.txt"
        save_edgelist(g, path)
        assert path.read_text().splitlines() == ["1 2 3", "0 1 9"]
