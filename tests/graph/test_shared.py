"""Shared-memory graph publication: publish/attach round trips."""

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.core.columnar_kernels import export_delta_cache, install_delta_cache
from repro.errors import ValidationError
from repro.graph.shared import (
    attach_arrays,
    attach_graph,
    publish_arrays,
    publish_graph,
)
from repro.graph.temporal_graph import TemporalGraph
from tests.conftest import random_graph


class TestArrayBundles:
    def test_round_trip_values_and_meta(self):
        src = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0, 1, 7),
            "flags": np.array([True, False, True]),
            "empty": np.zeros(0, dtype=np.int64),
        }
        handle = publish_arrays(src, meta={"delta": 3.5, "kind": "test"})
        try:
            attached = attach_arrays(handle.manifest)
            assert set(attached.arrays) == set(src)
            for name, arr in src.items():
                got = attached.arrays[name]
                assert got.dtype == arr.dtype
                assert np.array_equal(got, arr)
                assert not got.flags.writeable
            assert handle.manifest.metadata() == {"delta": 3.5, "kind": "test"}
            attached.close()
        finally:
            handle.close()

    def test_manifest_is_picklable(self):
        import pickle

        handle = publish_arrays({"x": np.arange(4)})
        try:
            manifest = pickle.loads(pickle.dumps(handle.manifest))
            attached = attach_arrays(manifest)
            assert np.array_equal(attached.arrays["x"], np.arange(4))
            attached.close()
        finally:
            handle.close()

    def test_close_unlinks_segment(self):
        handle = publish_arrays({"x": np.arange(4)})
        manifest = handle.manifest
        handle.close()
        with pytest.raises(FileNotFoundError):
            attach_arrays(manifest)

    def test_close_is_idempotent(self):
        handle = publish_arrays({"x": np.arange(4)})
        handle.close()
        handle.close()


class TestGraphPublication:
    def test_counts_identical_after_attach(self, paper_graph):
        ref = count_motifs(paper_graph, 10)
        handle = publish_graph(paper_graph)
        try:
            attached = attach_graph(handle.manifest)
            for backend in ("python", "columnar"):
                result = count_motifs(attached.graph, 10, backend=backend)
                assert result.same_counts(ref), backend
            attached.close()
        finally:
            handle.close()

    def test_attached_columnar_is_prebuilt_and_zero_copy(self, paper_graph):
        col = paper_graph.columnar()
        handle = publish_graph(paper_graph)
        try:
            attached = attach_graph(handle.manifest)
            # The columnar store arrives ready-made (no O(m log m)
            # rebuild) and stamped valid against the fresh graph.
            assert attached.graph._columnar is not None
            assert attached.graph._columnar_version == attached.graph.version
            att_col = attached.graph.columnar()
            assert np.array_equal(att_col.inc_indptr, col.inc_indptr)
            assert np.array_equal(att_col.pair_keys, col.pair_keys)
            assert att_col.pair_bloom_bits == col.pair_bloom_bits
            assert not att_col.src.flags.writeable
            attached.close()
        finally:
            handle.close()

    def test_edge_only_publication_skips_columnar(self, paper_graph):
        handle = publish_graph(paper_graph, include_columnar=False)
        try:
            assert not handle.has_columnar
            attached = attach_graph(handle.manifest)
            assert attached.graph._columnar is None
            assert count_motifs(attached.graph, 10).total() == 27
            attached.close()
        finally:
            handle.close()

    def test_empty_graph_round_trip(self):
        handle = publish_graph(TemporalGraph([]))
        try:
            attached = attach_graph(handle.manifest)
            assert attached.graph.num_edges == 0
            assert count_motifs(attached.graph, 5).total() == 0
            attached.close()
        finally:
            handle.close()

    def test_float_timestamps_round_trip(self):
        g = TemporalGraph([(0, 1, 0.5), (1, 0, 1.25), (0, 1, 2.75)])
        handle = publish_graph(g)
        try:
            attached = attach_graph(handle.manifest)
            assert attached.graph.timestamps.dtype == np.float64
            assert count_motifs(attached.graph, 3.0).same_counts(count_motifs(g, 3.0))
            attached.close()
        finally:
            handle.close()

    def test_non_graph_manifest_rejected(self):
        handle = publish_arrays({"x": np.arange(4)})
        try:
            with pytest.raises(ValidationError, match="graph bundle"):
                attach_graph(handle.manifest)
        finally:
            handle.close()

    @pytest.mark.parametrize("seed", [0, 5])
    def test_random_graphs_round_trip(self, seed):
        g = random_graph(seed, num_nodes=8, num_edges=40)
        ref = count_motifs(g, 7)
        handle = publish_graph(g)
        try:
            attached = attach_graph(handle.manifest)
            assert count_motifs(attached.graph, 7, backend="columnar").same_counts(ref)
            attached.close()
        finally:
            handle.close()


class TestDeltaTables:
    def test_export_install_round_trip(self, paper_graph):
        ref = count_motifs(paper_graph, 10, backend="columnar")
        exported = export_delta_cache(paper_graph.columnar(), 10)
        handle = publish_graph(paper_graph)
        bundle = publish_arrays(exported)
        try:
            attached = attach_graph(handle.manifest)
            tables = attach_arrays(bundle.manifest)
            install_delta_cache(attached.graph._columnar, 10, tables.arrays)
            result = count_motifs(attached.graph, 10, backend="columnar")
            assert result.same_counts(ref)
            # Installed tables are actually resident (no local rebuild).
            assert ("bounds", 10.0) in attached.graph._columnar.delta_cache
            assert ("star", 10.0) in attached.graph._columnar.delta_cache
            tables.close()
            attached.close()
        finally:
            bundle.close()
            handle.close()

    def test_bounds_only_export(self, paper_graph):
        exported = export_delta_cache(paper_graph.columnar(), 4, star_pair=False)
        assert "bounds.lo_eid" in exported
        assert "star.gws" not in exported


class TestCanonicalArrays:
    def test_zero_copy_adoption(self, paper_graph):
        g2 = TemporalGraph.from_canonical_arrays(
            paper_graph.sources, paper_graph.destinations, paper_graph.timestamps,
            num_nodes=paper_graph.num_nodes,
        )
        assert g2.sources is not None
        assert count_motifs(g2, 10).same_counts(count_motifs(paper_graph, 10))
        # Lazy views still work on the adopted columns.
        assert g2.degree(0) == paper_graph.degree(0)
        assert g2.pair_timeline(0, 1) == paper_graph.pair_timeline(0, 1)

    def test_identity_labels_are_lazy_but_complete(self, paper_graph):
        g2 = TemporalGraph.from_canonical_arrays(
            paper_graph.sources, paper_graph.destinations, paper_graph.timestamps,
            num_nodes=paper_graph.num_nodes,
        )
        # Labels are the internal ids, served without O(n) storage.
        assert not isinstance(g2._labels, list)
        assert g2.num_nodes == paper_graph.num_nodes
        assert g2.label(3) == 3
        assert g2.index(3) == 3
        with pytest.raises(KeyError):
            g2.index(g2.num_nodes)
        assert list(g2.edges())[0].t == next(paper_graph.edges()).t

    def test_unsorted_rejected(self):
        with pytest.raises(ValidationError, match="canonical"):
            TemporalGraph.from_canonical_arrays(
                np.array([0, 1]), np.array([1, 0]), np.array([5, 3])
            )

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_timestamps_rejected(self, bad):
        with pytest.raises(ValidationError, match="finite"):
            TemporalGraph.from_canonical_arrays(
                np.array([0, 1]), np.array([1, 0]), np.array([1.0, bad])
            )

    def test_identity_index_accepts_numpy_ints(self, paper_graph):
        g2 = TemporalGraph.from_canonical_arrays(
            paper_graph.sources, paper_graph.destinations, paper_graph.timestamps,
            num_nodes=paper_graph.num_nodes,
        )
        # Node ids commonly come out of numpy arrays; attached graphs
        # must treat them like regular graphs do.
        assert g2.index(np.int64(2)) == 2
        assert np.int64(2) in g2._index
        assert g2._index.get(np.int64(99)) is None

    def test_self_loops_rejected(self):
        with pytest.raises(ValidationError, match="self-loop"):
            TemporalGraph.from_canonical_arrays(
                np.array([0, 1]), np.array([0, 0]), np.array([1, 2])
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="equal lengths"):
            TemporalGraph.from_canonical_arrays(
                np.array([0]), np.array([1, 0]), np.array([1, 2])
            )
