"""Tests for graph statistics (Table II / Fig. 9 support)."""

import pytest

from repro.graph.statistics import (
    SECONDS_PER_DAY,
    compute_statistics,
    default_degree_threshold,
    degree_distribution,
    reciprocity,
    top_k_degrees,
)
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def star5():
    # hub 0 with 5 spokes, plus one reciprocated pair
    return TemporalGraph(
        [(0, i, i) for i in range(1, 6)] + [(1, 0, 10), (0, 1, 11)]
    )


class TestDegreeStatistics:
    def test_degree_distribution(self, star5):
        hist = degree_distribution(star5)
        assert hist[7] == 1  # hub: 5 out + 1 in + 1 out
        assert hist[1] == 4  # leaves 2..5

    def test_top_k(self, star5):
        assert top_k_degrees(star5, 2) == [7, 3]

    def test_top_k_larger_than_n(self, star5):
        assert len(top_k_degrees(star5, 100)) == star5.num_nodes

    def test_top_k_zero(self, star5):
        assert top_k_degrees(star5, 0) == []

    def test_default_threshold_is_min_of_top20(self):
        g = TemporalGraph([(0, i, i) for i in range(1, 25)])
        # top-20 degrees: hub 24, then 19 leaves of degree 1
        assert default_degree_threshold(g) == 1

    def test_default_threshold_empty_graph(self):
        assert default_degree_threshold(TemporalGraph([])) == 0


class TestReciprocity:
    def test_no_reciprocity(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        assert reciprocity(g) == 0.0

    def test_full_reciprocity(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2)])
        assert reciprocity(g) == 1.0

    def test_empty(self):
        assert reciprocity(TemporalGraph([])) == 0.0


class TestComputeStatistics:
    def test_summary_fields(self, star5):
        stats = compute_statistics(star5)
        assert stats.num_nodes == 6
        assert stats.num_edges == 7
        assert stats.max_degree == 7
        assert stats.time_span == 10  # t from 1 to 11
        assert stats.time_span_days == pytest.approx(10 / SECONDS_PER_DAY)
        assert stats.num_static_pairs == 5
        assert 0 < stats.top10_degree_share <= 1.0

    def test_empty_graph_statistics(self):
        stats = compute_statistics(TemporalGraph([]))
        assert stats.num_nodes == 0
        assert stats.max_degree == 0
        assert stats.mean_degree == 0.0
        assert stats.top10_degree_share == 0.0

    def test_table_row(self, star5):
        name, nodes, edges, days = compute_statistics(star5).as_table_row("x")
        assert (name, nodes, edges) == ("x", 6, 7)
        assert days == round(10 / SECONDS_PER_DAY, 1)

    def test_degree_histogram_sums_to_node_count(self, star5):
        stats = compute_statistics(star5)
        assert sum(stats.degree_histogram.values()) == star5.num_nodes
