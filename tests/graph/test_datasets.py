"""Tests for the sixteen-dataset registry."""

import pytest

from repro.errors import DatasetError
from repro.graph.datasets import REGISTRY, dataset_names, get_spec, load_dataset


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(REGISTRY) == 16

    def test_paper_order_matches_table2(self):
        names = dataset_names()
        assert names[0] == "email_eu"
        assert names[1] == "collegemsg"
        assert names[-1] == "redditcomments"

    def test_paper_statistics_recorded(self):
        spec = get_spec("redditcomments")
        assert spec.paper_edges == 613_289_746
        assert spec.paper_nodes == 8_036_164

    def test_bipartite_flags(self):
        assert get_spec("rec_movielens").bipartite
        assert get_spec("ia_online_ads").bipartite
        assert get_spec("act_mooc").bipartite
        assert not get_spec("wikitalk").bipartite

    def test_unique_seeds(self):
        seeds = [spec.seed for spec in REGISTRY.values()]
        assert len(seeds) == len(set(seeds))

    def test_edge_scale_at_most_one(self):
        for spec in REGISTRY.values():
            assert spec.edge_scale <= 1.0

    def test_small_datasets_full_size(self):
        for name in ("collegemsg", "bitcoinotc", "bitcoinalpha"):
            spec = get_spec(name)
            assert spec.gen_edges == spec.paper_edges

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("livejournal")
        with pytest.raises(DatasetError):
            load_dataset("livejournal")


class TestLoading:
    def test_load_matches_spec_size(self):
        graph = load_dataset("collegemsg")
        spec = get_spec("collegemsg")
        assert graph.num_edges == spec.gen_edges
        assert graph.num_nodes <= spec.gen_nodes

    def test_caching_returns_same_object(self):
        a = load_dataset("bitcoinalpha")
        b = load_dataset("bitcoinalpha")
        assert a is b

    def test_cache_bypass(self):
        a = load_dataset("bitcoinalpha")
        b = load_dataset("bitcoinalpha", cache=False)
        assert a is not b
        assert a == b

    def test_scaling(self):
        full = get_spec("collegemsg").gen_edges
        scaled = load_dataset("collegemsg", scale=0.1)
        assert scaled.num_edges == int(full * 0.1)

    def test_deterministic_rebuild(self):
        a = load_dataset("sms_a", cache=False)
        b = load_dataset("sms_a", cache=False)
        assert a == b

    def test_time_span_close_to_paper(self):
        spec = get_spec("bitcoinotc")
        graph = load_dataset("bitcoinotc")
        days = graph.time_span / 86_400
        assert days == pytest.approx(spec.paper_days, rel=0.05)

    def test_bipartite_dataset_structure(self):
        graph = load_dataset("ia_online_ads", scale=0.2)
        sources = {u for u, _, _ in graph.internal_edges()}
        targets = {v for _, v, _ in graph.internal_edges()}
        assert not (sources & targets)
