"""Tests for the synthetic temporal graph generators."""

import pytest

from repro.errors import ValidationError
from repro.graph import generators
from repro.graph.statistics import reciprocity
from repro.core.api import count_motifs
from repro.core.motifs import MotifCategory


class TestPowerlawGenerator:
    def test_deterministic(self):
        a = generators.powerlaw_temporal_graph(50, 500, seed=7)
        b = generators.powerlaw_temporal_graph(50, 500, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.powerlaw_temporal_graph(50, 500, seed=1)
        b = generators.powerlaw_temporal_graph(50, 500, seed=2)
        assert a != b

    def test_edge_count_exact(self):
        g = generators.powerlaw_temporal_graph(40, 777, seed=3)
        assert g.num_edges == 777

    def test_no_self_loops(self):
        g = generators.powerlaw_temporal_graph(10, 2000, seed=5)
        for u, v, _ in g.internal_edges():
            assert u != v

    def test_timestamps_within_span(self):
        g = generators.powerlaw_temporal_graph(30, 400, span=100_000.0, seed=1)
        assert g.timestamps.min() >= 0
        assert g.timestamps.max() <= 100_000

    def test_skew_increases_max_degree(self):
        flat = generators.powerlaw_temporal_graph(200, 3000, skew=0.1, seed=9)
        skewed = generators.powerlaw_temporal_graph(200, 3000, skew=1.4, seed=9)
        assert skewed.degrees().max() > flat.degrees().max()

    def test_reciprocity_knob(self):
        low = generators.powerlaw_temporal_graph(
            100, 3000, reciprocity=0.0, repeat=0.0, triadic=0.0, seed=4
        )
        high = generators.powerlaw_temporal_graph(
            100, 3000, reciprocity=0.5, repeat=0.0, triadic=0.0, seed=4
        )
        assert reciprocity(high) > reciprocity(low)

    def test_triadic_knob_controls_triangles(self):
        none = generators.powerlaw_temporal_graph(
            60, 2500, triadic=0.0, reciprocity=0.0, repeat=0.0,
            session_duration=50.0, seed=11,
        )
        rich = generators.powerlaw_temporal_graph(
            60, 2500, triadic=0.5, reciprocity=0.0, repeat=0.0,
            session_duration=50.0, seed=11,
        )
        tri_none = count_motifs(none, 200).category_total(MotifCategory.TRIANGLE)
        tri_rich = count_motifs(rich, 200).category_total(MotifCategory.TRIANGLE)
        assert tri_rich > tri_none

    def test_bipartite_has_no_triangles(self):
        g = generators.powerlaw_temporal_graph(
            80, 3000, bipartite_fraction=1.0, seed=13
        )
        counts = count_motifs(g, 10_000)
        assert counts.category_total(MotifCategory.TRIANGLE) == 0

    def test_bipartite_edges_one_direction_only(self):
        g = generators.powerlaw_temporal_graph(
            50, 1000, bipartite_fraction=1.0, seed=13
        )
        sources = {u for u, _, _ in g.internal_edges()}
        targets = {v for _, v, _ in g.internal_edges()}
        assert not (sources & targets)

    def test_probability_validation(self):
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(10, 10, reciprocity=1.5)
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(10, 10, repeat=0.6, reciprocity=0.5)

    def test_size_validation(self):
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(1, 10)
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(10, -1)
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(10, 10, session_length=0.5)
        with pytest.raises(ValidationError):
            generators.powerlaw_temporal_graph(10, 10, session_duration=0)

    def test_zero_edges(self):
        g = generators.powerlaw_temporal_graph(10, 0, seed=1)
        assert g.num_edges == 0


class TestUniformGenerator:
    def test_deterministic(self):
        assert generators.uniform_temporal_graph(20, 100, seed=3) == \
            generators.uniform_temporal_graph(20, 100, seed=3)

    def test_counts(self):
        g = generators.uniform_temporal_graph(20, 100, seed=3)
        assert g.num_edges == 100
        assert g.num_nodes <= 20

    def test_no_self_loops(self):
        g = generators.uniform_temporal_graph(5, 500, seed=2)
        for u, v, _ in g.internal_edges():
            assert u != v

    def test_sorted_times(self):
        g = generators.uniform_temporal_graph(10, 50, seed=1)
        t = g.timestamps.tolist()
        assert t == sorted(t)


class TestMicrobenchmarkGenerators:
    def test_star_burst_hub_degree(self):
        g = generators.star_burst_graph(10, 3, seed=1)
        assert g.degree(g.index(0)) == 30
        assert g.num_edges == 30

    def test_star_burst_validation(self):
        with pytest.raises(ValidationError):
            generators.star_burst_graph(1, 3)

    def test_pair_burst_counts(self):
        g = generators.pair_burst_graph(4, 5, seed=1)
        assert g.num_edges == 20
        assert g.num_nodes == 8

    def test_pair_burst_is_pair_only(self):
        g = generators.pair_burst_graph(3, 6, gap=1, seed=2)
        counts = count_motifs(g, 100)
        assert counts.category_total(MotifCategory.STAR) == 0
        assert counts.category_total(MotifCategory.TRIANGLE) == 0
        assert counts.category_total(MotifCategory.PAIR) > 0

    def test_pair_burst_validation(self):
        with pytest.raises(ValidationError):
            generators.pair_burst_graph(0, 5)

    def test_triangle_rich_counts(self):
        g = generators.triangle_rich_graph(10, cyclic_fraction=1.0, seed=3)
        counts = count_motifs(g, 5)
        assert counts["M26"] == 10  # all cyclic triangles
        assert counts.category_total(MotifCategory.TRIANGLE) == 10

    def test_triangle_rich_acyclic(self):
        g = generators.triangle_rich_graph(8, cyclic_fraction=0.0, seed=3)
        counts = count_motifs(g, 5)
        assert counts["M26"] == 0
        assert counts["M15"] == 8

    def test_triangle_rich_shared_nodes(self):
        g = generators.triangle_rich_graph(20, shared_nodes=6, seed=4)
        assert g.num_nodes <= 6

    def test_triangle_rich_validation(self):
        with pytest.raises(ValidationError):
            generators.triangle_rich_graph(0)
        with pytest.raises(ValidationError):
            generators.triangle_rich_graph(3, cyclic_fraction=2.0)
