"""Unit tests for the appendable/evictable columnar edge store."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.graph.stream_store import StreamingEdgeStore
from repro.graph.temporal_graph import TemporalGraph


def store_with(edges, **kwargs):
    store = StreamingEdgeStore(**kwargs)
    store.extend(edges)
    return store


class TestIngest:
    def test_append_and_counts(self):
        store = StreamingEdgeStore()
        assert store.append("a", "b", 1)
        assert store.append("b", "a", 2)
        assert store.num_live == 2
        assert store.num_seen == 2
        assert store.t_latest == 2
        assert store.t_earliest == 1

    def test_self_loops_dropped_by_default(self):
        store = StreamingEdgeStore()
        assert not store.append(3, 3, 1)
        assert store.num_live == 0
        assert store.num_self_loops_dropped == 1

    def test_self_loop_error_policy(self):
        store = StreamingEdgeStore(on_self_loop="error")
        with pytest.raises(ValidationError):
            store.append(3, 3, 1)

    def test_non_numeric_timestamp_rejected(self):
        store = StreamingEdgeStore()
        with pytest.raises(ValidationError):
            store.append(0, 1, "noon")

    def test_malformed_record_rejected(self):
        store = StreamingEdgeStore()
        with pytest.raises(ValidationError):
            store.extend([(0, 1)])

    def test_version_bumps_on_append_and_evict(self):
        store = StreamingEdgeStore()
        v0 = store.version
        store.append(0, 1, 5)
        assert store.version > v0
        v1 = store.version
        store.evict_before(10)
        assert store.version > v1


class TestEviction:
    def test_evict_before_removes_and_sets_watermark(self):
        store = store_with([(0, 1, t) for t in range(10)])
        evicted = store.evict_before(4)
        assert evicted == 4
        assert store.watermark == 4
        assert store.num_live == 6
        assert store.num_evicted == 4
        assert store.num_seen == 10

    def test_watermark_never_regresses(self):
        store = store_with([(0, 1, t) for t in range(10)])
        store.evict_before(5)
        assert store.evict_before(3) == 0
        assert store.watermark == 5

    def test_late_arrivals_dropped_below_watermark(self):
        store = store_with([(0, 1, t) for t in range(10)])
        store.evict_before(5)
        assert not store.append(0, 1, 4)
        assert store.num_dropped_late == 1
        # At-watermark arrivals are inside the closed window: accepted.
        assert store.append(0, 1, 5)

    def test_evict_exact_boundary_is_exclusive(self):
        store = store_with([(0, 1, 1), (0, 1, 2), (0, 1, 3)])
        store.evict_before(2)
        assert [t for _, _, t in store.live_edges()] == [2, 3]

    def test_compaction_preserves_contents(self):
        edges = [(i % 5, (i + 1) % 5, i) for i in range(100)]
        store = store_with(edges)
        store.evict_before(90)  # forces compaction (>half dead)
        assert store.live_edges() == edges[90:]


class TestRunsAndMerging:
    def test_many_flushes_merge_runs(self):
        store = StreamingEdgeStore(max_runs=2)
        for base in range(10):
            store.extend([(0, 1, base * 10 + k) for k in range(5)])
            store.slice_arrays()  # force a flush per batch
        assert len(store._runs) <= 3  # merged below the cap
        assert store.num_live == 50

    def test_interleaved_out_of_order_runs_slice_in_arrival_order(self):
        store = StreamingEdgeStore(max_runs=1)
        store.extend([(0, 1, 5), (1, 2, 1)])
        store.slice_arrays()
        store.extend([(2, 3, 3), (3, 4, 1)])
        assert store.live_edges() == [(0, 1, 5), (1, 2, 1), (2, 3, 3), (3, 4, 1)]


class TestSlicing:
    def test_slice_bounds_inclusive_lo_exclusive_hi(self):
        store = store_with([(0, 1, t) for t in (1, 2, 3, 4, 5)])
        src, dst, t = store.slice_arrays(2, 5)
        assert t.tolist() == [2, 3, 4]

    def test_slice_graph_matches_batch_canonical_order(self):
        # Heavy timestamp ties, shuffled arrival: the slice graph must
        # break ties exactly like a batch TemporalGraph over the same
        # arrival sequence.
        edges = [(i % 4, (i + 1) % 4, (i * 7) % 3) for i in range(30)]
        store = store_with(edges)
        sliced = store.slice_graph(None, None)
        batch = TemporalGraph(edges)
        assert np.array_equal(sliced.timestamps, batch.timestamps)
        # Same canonical (src, dst) sequence modulo label interning.
        batch_ids = [
            (batch.index(u), batch.index(v)) for u, v, _ in batch.edges()
        ]
        slice_ids = list(zip(sliced.sources.tolist(), sliced.destinations.tolist()))
        # Store ids equal first-appearance interning of the arrival
        # stream, which is exactly TemporalGraph's rule.
        assert slice_ids == batch_ids

    def test_empty_slice(self):
        store = store_with([(0, 1, 10)])
        src, dst, t = store.slice_arrays(20, None)
        assert len(src) == len(dst) == len(t) == 0
        assert store.slice_graph(20, None).num_edges == 0

    def test_live_edges_preserve_labels(self):
        store = store_with([("alice", "bob", 3), ("bob", "carol", 1)])
        assert store.live_edges() == [("alice", "bob", 3), ("bob", "carol", 1)]

    def test_float_and_int_timestamps_mix(self):
        store = store_with([(0, 1, 1), (1, 2, 2.5), (2, 0, 3)])
        _, _, t = store.slice_arrays()
        assert t.tolist() == [1.0, 2.5, 3.0]


class TestValidation:
    def test_bad_max_runs(self):
        with pytest.raises(ValidationError):
            StreamingEdgeStore(max_runs=0)

    def test_bad_self_loop_policy(self):
        with pytest.raises(ValidationError):
            StreamingEdgeStore(on_self_loop="ignore")


# ----------------------------------------------------------------------
# property tests: store invariants under arbitrary op sequences
# ----------------------------------------------------------------------

@st.composite
def op_sequences(draw):
    """Random interleavings of appends (tie-heavy) and evictions."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()) or not ops:
            u = draw(st.integers(min_value=0, max_value=5))
            v = draw(st.integers(min_value=0, max_value=5))
            if u == v:
                v = (v + 1) % 6
            t = draw(st.integers(min_value=0, max_value=12))
            ops.append(("append", u, v, t))
        else:
            ops.append(("evict", draw(st.integers(min_value=0, max_value=14))))
    return ops


def replay_reference(ops):
    """Pure-python model of the store's accept/evict semantics."""
    accepted = []  # (u, v, t) in arrival order
    watermark = None
    for op in ops:
        if op[0] == "append":
            _, u, v, t = op
            if watermark is None or t >= watermark:
                accepted.append((u, v, t))
        else:
            cutoff = op[1]
            if watermark is None or cutoff > watermark:
                watermark = cutoff
    live = [e for e in accepted if watermark is None or e[2] >= watermark]
    return accepted, live, watermark


class TestStoreProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=op_sequences(), max_runs=st.integers(min_value=1, max_value=6))
    def test_eviction_never_drops_in_window_edges(self, ops, max_runs):
        """Exactly the in-window suffix survives — nothing more or less."""
        store = StreamingEdgeStore(max_runs=max_runs)
        for op in ops:
            if op[0] == "append":
                store.append(op[1], op[2], op[3])
            else:
                store.evict_before(op[1])
        _, live, watermark = replay_reference(ops)
        assert store.live_edges() == live
        assert store.watermark == watermark
        assert store.num_live == len(live)

    @settings(max_examples=60, deadline=None)
    @given(ops=op_sequences())
    def test_lazy_merge_preserves_arrival_order_tie_stamps(self, ops):
        """Aggressive merging and no merging agree edge-for-edge.

        Arrival order is the tie-break stamp: a batch rebuild of the
        live set must see the same canonical order whichever run
        layout the store happens to hold, including after merges.
        """
        eager = StreamingEdgeStore(max_runs=1)   # merge on every flush
        lazy = StreamingEdgeStore(max_runs=64)   # effectively never merge
        for op in ops:
            if op[0] == "append":
                eager.append(op[1], op[2], op[3])
                lazy.append(op[1], op[2], op[3])
            else:
                eager.evict_before(op[1])
                lazy.evict_before(op[1])
            # Force different internal layouts at every step.
            eager.slice_arrays(None, None)
        assert eager.live_edges() == lazy.live_edges()
        assert eager.live_graph() == lazy.live_graph()

    @settings(max_examples=60, deadline=None)
    @given(ops=op_sequences())
    def test_version_stamp_tracks_every_mutation(self, ops):
        """Accepted appends and real evictions bump the version; slices
        taken after any mutation reflect the post-mutation state."""
        store = StreamingEdgeStore()
        accepted_model = []
        watermark = None
        for op in ops:
            before = store.version
            if op[0] == "append":
                _, u, v, t = op
                accepted = store.append(u, v, t)
                timely = watermark is None or t >= watermark
                assert accepted == timely
                if accepted:
                    accepted_model.append((u, v, t))
                    assert store.version == before + 1
                else:
                    assert store.version == before
            else:
                cutoff = op[1]
                evicted = store.evict_before(cutoff)
                if watermark is None or cutoff > watermark:
                    watermark = cutoff
                survivors = [e for e in accepted_model if e[2] >= watermark]
                assert evicted == len(accepted_model) - len(survivors)
                accepted_model = survivors
                if evicted:
                    assert store.version == before + 1
                else:
                    assert store.version == before
            # The slice never serves stale state.
            assert store.live_edges() == [
                e for e in accepted_model
                if watermark is None or e[2] >= watermark
            ]

    @settings(max_examples=40, deadline=None)
    @given(ops=op_sequences())
    def test_slice_graph_columnar_never_stale(self, ops):
        """Columnar views derived from slices reflect every mutation.

        ``slice_graph`` returns a fresh ``TemporalGraph`` whose
        ``columnar()`` is stamped against that graph's version — so a
        view cached across store mutations can always be detected as
        belonging to an older graph object, never silently reused.
        """
        store = StreamingEdgeStore()
        previous = None
        for op in ops:
            if op[0] == "append":
                store.append(op[1], op[2], op[3])
            else:
                store.evict_before(op[1])
            graph = store.live_graph()
            col = graph.columnar()
            assert col.num_edges == store.num_live
            assert np.array_equal(np.sort(col.t), col.t)
            if previous is not None and store.num_live != previous.num_edges:
                # The old columnar view belongs to the old graph; the
                # new slice never reuses it.
                assert previous.columnar() is not col
            previous = graph
