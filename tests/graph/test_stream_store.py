"""Unit tests for the appendable/evictable columnar edge store."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph.stream_store import StreamingEdgeStore
from repro.graph.temporal_graph import TemporalGraph


def store_with(edges, **kwargs):
    store = StreamingEdgeStore(**kwargs)
    store.extend(edges)
    return store


class TestIngest:
    def test_append_and_counts(self):
        store = StreamingEdgeStore()
        assert store.append("a", "b", 1)
        assert store.append("b", "a", 2)
        assert store.num_live == 2
        assert store.num_seen == 2
        assert store.t_latest == 2
        assert store.t_earliest == 1

    def test_self_loops_dropped_by_default(self):
        store = StreamingEdgeStore()
        assert not store.append(3, 3, 1)
        assert store.num_live == 0
        assert store.num_self_loops_dropped == 1

    def test_self_loop_error_policy(self):
        store = StreamingEdgeStore(on_self_loop="error")
        with pytest.raises(ValidationError):
            store.append(3, 3, 1)

    def test_non_numeric_timestamp_rejected(self):
        store = StreamingEdgeStore()
        with pytest.raises(ValidationError):
            store.append(0, 1, "noon")

    def test_malformed_record_rejected(self):
        store = StreamingEdgeStore()
        with pytest.raises(ValidationError):
            store.extend([(0, 1)])

    def test_version_bumps_on_append_and_evict(self):
        store = StreamingEdgeStore()
        v0 = store.version
        store.append(0, 1, 5)
        assert store.version > v0
        v1 = store.version
        store.evict_before(10)
        assert store.version > v1


class TestEviction:
    def test_evict_before_removes_and_sets_watermark(self):
        store = store_with([(0, 1, t) for t in range(10)])
        evicted = store.evict_before(4)
        assert evicted == 4
        assert store.watermark == 4
        assert store.num_live == 6
        assert store.num_evicted == 4
        assert store.num_seen == 10

    def test_watermark_never_regresses(self):
        store = store_with([(0, 1, t) for t in range(10)])
        store.evict_before(5)
        assert store.evict_before(3) == 0
        assert store.watermark == 5

    def test_late_arrivals_dropped_below_watermark(self):
        store = store_with([(0, 1, t) for t in range(10)])
        store.evict_before(5)
        assert not store.append(0, 1, 4)
        assert store.num_dropped_late == 1
        # At-watermark arrivals are inside the closed window: accepted.
        assert store.append(0, 1, 5)

    def test_evict_exact_boundary_is_exclusive(self):
        store = store_with([(0, 1, 1), (0, 1, 2), (0, 1, 3)])
        store.evict_before(2)
        assert [t for _, _, t in store.live_edges()] == [2, 3]

    def test_compaction_preserves_contents(self):
        edges = [(i % 5, (i + 1) % 5, i) for i in range(100)]
        store = store_with(edges)
        store.evict_before(90)  # forces compaction (>half dead)
        assert store.live_edges() == edges[90:]


class TestRunsAndMerging:
    def test_many_flushes_merge_runs(self):
        store = StreamingEdgeStore(max_runs=2)
        for base in range(10):
            store.extend([(0, 1, base * 10 + k) for k in range(5)])
            store.slice_arrays()  # force a flush per batch
        assert len(store._runs) <= 3  # merged below the cap
        assert store.num_live == 50

    def test_interleaved_out_of_order_runs_slice_in_arrival_order(self):
        store = StreamingEdgeStore(max_runs=1)
        store.extend([(0, 1, 5), (1, 2, 1)])
        store.slice_arrays()
        store.extend([(2, 3, 3), (3, 4, 1)])
        assert store.live_edges() == [(0, 1, 5), (1, 2, 1), (2, 3, 3), (3, 4, 1)]


class TestSlicing:
    def test_slice_bounds_inclusive_lo_exclusive_hi(self):
        store = store_with([(0, 1, t) for t in (1, 2, 3, 4, 5)])
        src, dst, t = store.slice_arrays(2, 5)
        assert t.tolist() == [2, 3, 4]

    def test_slice_graph_matches_batch_canonical_order(self):
        # Heavy timestamp ties, shuffled arrival: the slice graph must
        # break ties exactly like a batch TemporalGraph over the same
        # arrival sequence.
        edges = [(i % 4, (i + 1) % 4, (i * 7) % 3) for i in range(30)]
        store = store_with(edges)
        sliced = store.slice_graph(None, None)
        batch = TemporalGraph(edges)
        assert np.array_equal(sliced.timestamps, batch.timestamps)
        # Same canonical (src, dst) sequence modulo label interning.
        batch_ids = [
            (batch.index(u), batch.index(v)) for u, v, _ in batch.edges()
        ]
        slice_ids = list(zip(sliced.sources.tolist(), sliced.destinations.tolist()))
        # Store ids equal first-appearance interning of the arrival
        # stream, which is exactly TemporalGraph's rule.
        assert slice_ids == batch_ids

    def test_empty_slice(self):
        store = store_with([(0, 1, 10)])
        src, dst, t = store.slice_arrays(20, None)
        assert len(src) == len(dst) == len(t) == 0
        assert store.slice_graph(20, None).num_edges == 0

    def test_live_edges_preserve_labels(self):
        store = store_with([("alice", "bob", 3), ("bob", "carol", 1)])
        assert store.live_edges() == [("alice", "bob", 3), ("bob", "carol", 1)]

    def test_float_and_int_timestamps_mix(self):
        store = store_with([(0, 1, 1), (1, 2, 2.5), (2, 0, 3)])
        _, _, t = store.slice_arrays()
        assert t.tolist() == [1.0, 2.5, 3.0]


class TestValidation:
    def test_bad_max_runs(self):
        with pytest.raises(ValidationError):
            StreamingEdgeStore(max_runs=0)

    def test_bad_self_loop_policy(self):
        with pytest.raises(ValidationError):
            StreamingEdgeStore(on_self_loop="ignore")
