"""Unit tests for the TemporalGraph data structure."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph.temporal_graph import IN, OUT, TemporalEdge, TemporalGraph


class TestConstruction:
    def test_empty_graph(self):
        g = TemporalGraph([])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.time_span == 0

    def test_single_edge(self):
        g = TemporalGraph([(0, 1, 5)])
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.time_span == 0

    def test_labels_interned_in_order_of_appearance(self):
        g = TemporalGraph([("x", "y", 1), ("z", "x", 2)])
        assert g.label(0) == "x"
        assert g.label(1) == "y"
        assert g.label(2) == "z"
        assert g.index("z") == 2

    def test_edges_sorted_by_time(self):
        g = TemporalGraph([(0, 1, 9), (1, 2, 3), (2, 0, 6)])
        assert g.timestamps.tolist() == [3, 6, 9]

    def test_tie_break_preserves_input_order(self):
        g = TemporalGraph([("a", "b", 5), ("c", "d", 5), ("e", "f", 5)])
        edges = list(g.edges())
        assert edges[0] == TemporalEdge("a", "b", 5)
        assert edges[1] == TemporalEdge("c", "d", 5)
        assert edges[2] == TemporalEdge("e", "f", 5)

    def test_duplicate_edges_kept(self):
        g = TemporalGraph([(0, 1, 5), (0, 1, 5), (0, 1, 5)])
        assert g.num_edges == 3

    def test_self_loops_dropped_by_default(self):
        g = TemporalGraph([(0, 0, 1), (0, 1, 2)])
        assert g.num_edges == 1
        assert g.num_self_loops_dropped == 1

    def test_self_loops_error_policy(self):
        with pytest.raises(ValidationError):
            TemporalGraph([(0, 0, 1)], on_self_loop="error")

    def test_invalid_self_loop_policy(self):
        with pytest.raises(ValidationError):
            TemporalGraph([], on_self_loop="keep-quiet")

    def test_malformed_record_raises(self):
        with pytest.raises(ValidationError):
            TemporalGraph([(0, 1)])  # type: ignore[list-item]

    def test_non_numeric_timestamp_raises(self):
        with pytest.raises(ValidationError):
            TemporalGraph([(0, 1, "yesterday")])  # type: ignore[list-item]

    def test_float_timestamps_supported(self):
        g = TemporalGraph([(0, 1, 0.5), (1, 2, 1.25)])
        assert g.timestamps.dtype == np.float64
        assert g.time_span == 0.75

    def test_integer_timestamps_stay_integer(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 7)])
        assert g.timestamps.dtype == np.int64

    def test_from_arrays(self):
        g = TemporalGraph.from_arrays([0, 1], [1, 2], [3, 1])
        assert g.num_edges == 2
        assert g.timestamps.tolist() == [1, 3]

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValidationError):
            TemporalGraph.from_arrays([0, 1], [1], [3, 1])

    def test_negative_timestamps_allowed(self):
        g = TemporalGraph([(0, 1, -10), (1, 0, -5)])
        assert g.time_span == 5


class TestSequences:
    def test_node_sequence_contains_both_directions(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 2, 3)])
        seq = g.node_sequence(0)
        assert seq.times == [1, 2, 3]
        assert seq.nbrs == [1, 1, 2]
        assert seq.dirs == [OUT, IN, OUT]

    def test_sequence_eids_are_canonical(self):
        g = TemporalGraph([(0, 1, 5), (1, 2, 1)])
        # edge (1,2,1) sorts first -> eid 0
        assert g.node_sequence(1).eids == [0, 1]

    def test_degree_counts_incident_temporal_edges(self):
        g = TemporalGraph([(0, 1, 1), (0, 1, 2), (1, 0, 3), (2, 1, 4)])
        assert g.degree(0) == 3
        assert g.degree(1) == 4
        assert g.degree(2) == 1

    def test_degrees_array(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        assert g.degrees().tolist() == [1, 2, 1]

    def test_sequences_sorted_even_with_ties(self):
        g = TemporalGraph([(0, 1, 5), (2, 0, 5), (0, 3, 5)])
        seq = g.node_sequence(0)
        assert seq.eids == sorted(seq.eids)

    def test_static_neighbors(self):
        g = TemporalGraph([(0, 1, 1), (0, 1, 2), (2, 0, 3)])
        assert g.static_neighbors(0) == [1, 2]


class TestPairTimeline:
    def test_directions_relative_to_smaller_id(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2)])
        times, dirs, eids = g.pair_timeline(0, 1)
        assert times == [1, 2]
        assert dirs == [OUT, IN]
        assert eids == [0, 1]

    def test_symmetric_lookup(self):
        g = TemporalGraph([(3, 7, 1)])
        a = g.pair_timeline(g.index(3), g.index(7))
        b = g.pair_timeline(g.index(7), g.index(3))
        assert a == b

    def test_missing_pair_returns_empty(self):
        g = TemporalGraph([(0, 1, 1)])
        assert g.pair_timeline(0, 0) == ([], [], [])

    def test_static_pairs(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (1, 2, 3)])
        assert sorted(g.static_pairs()) == [(0, 1), (1, 2)]

    def test_ensure_pair_index_idempotent(self):
        g = TemporalGraph([(0, 1, 1)])
        g.ensure_pair_index()
        g.ensure_pair_index()
        assert g.pair_timeline(0, 1)[0] == [1]


class TestViewsAndEquality:
    def test_timestamps_read_only(self):
        g = TemporalGraph([(0, 1, 1)])
        with pytest.raises(ValueError):
            g.timestamps[0] = 99

    def test_edge_lists_cached_and_consistent(self):
        g = TemporalGraph([(0, 1, 2), (1, 2, 1)])
        src, dst, t = g.edge_lists()
        assert g.edge_lists() is g.edge_lists()  # cached, same object
        assert src == g.sources.tolist()
        assert dst == g.destinations.tolist()
        assert t == [1, 2]

    def test_equality(self):
        a = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        b = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        c = TemporalGraph([(0, 1, 1), (1, 2, 3)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_len_and_repr(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        assert len(g) == 2
        assert "nodes=3" in repr(g)

    def test_internal_edges_iteration(self):
        g = TemporalGraph([("a", "b", 1)])
        assert list(g.internal_edges()) == [(0, 1, 1)]


class TestCacheInvalidation:
    """Regression tests for the columnar stale-cache hazard (ISSUE 3).

    ``TemporalGraph.columnar()`` used to cache its view forever; code
    mutating the private edge columns in place kept receiving counts
    for edges that no longer existed.  ``invalidate_caches()`` is the
    sanctioned mutation protocol and the version stamp detects stale
    cached views.
    """

    def test_version_starts_at_zero_and_bumps(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2)])
        assert g.version == 0
        g.invalidate_caches()
        assert g.version == 1

    def test_columnar_rebuilt_after_invalidate(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 0, 3)])
        stale = g.columnar()
        # In-place timestamp mutation (the private arrays are owned by
        # the graph; only the property views are read-only).
        g._t[:] = [10, 20, 30]
        g.invalidate_caches()
        fresh = g.columnar()
        assert fresh is not stale
        assert fresh.t.tolist() == [10, 20, 30]

    def test_pair_index_and_edge_lists_refresh(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2)])
        g.ensure_pair_index()
        assert g.edge_lists()[2] == [1, 2]
        g._t[:] = [5, 6]
        g.invalidate_caches()
        assert g.edge_lists()[2] == [5, 6]
        assert g.pair_timeline(0, 1)[0] == [5, 6]
        assert g.node_sequence(0).times == [5, 6]

    def test_stale_counts_regression(self):
        """Counts after a sanctioned mutation reflect the new edges."""
        from repro.core.api import count_motifs

        g = TemporalGraph([(0, 1, 0), (1, 0, 1), (0, 1, 2)])
        before = count_motifs(g, 10.0, backend="columnar").total()
        assert before == 1
        # Spread the edges far beyond delta: the motif disappears.
        g._t[:] = [0, 1000, 2000]
        g.invalidate_caches()
        after = count_motifs(g, 10.0, backend="columnar").total()
        assert after == 0
