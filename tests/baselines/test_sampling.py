"""Tests for the sampling baselines: EWS and BTS."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.sampling_bts import bts_count, bts_count_pairs
from repro.baselines.sampling_ews import ews_count
from repro.core.bruteforce import brute_force_counts
from repro.core.motifs import PAIR_MOTIFS
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_ews_with_full_sampling_is_exact(graph, delta):
    """p = q = 1 must reproduce the exact counts (unbiasedness anchor)."""
    estimate = ews_count(graph, delta, p=1.0, q=1.0)
    exact = brute_force_counts(graph, delta)
    assert np.allclose(estimate.grid, exact.grid)


@settings(max_examples=40, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_ews_columnar_full_sampling_equals_fast(graph, delta):
    """The columnar kernel's p = q = 1 degeneracy is *exactly* FAST:
    every candidate counted once, so the float grid equals the exact
    int grid cell for cell (the vectorized unbiasedness anchor)."""
    from repro.core.api import count_motifs

    estimate = ews_count(graph, delta, p=1.0, q=1.0, backend="columnar")
    exact = count_motifs(graph, delta, backend="columnar")
    assert np.array_equal(estimate.grid, exact.grid)


@settings(max_examples=25, deadline=None)
@given(graph=temporal_graphs(max_edges=30), delta=deltas)
def test_sampling_backends_bit_identical(graph, delta):
    """Fixed seed ⇒ python and columnar agree bit for bit (BTS + EWS)."""
    for p, q in ((0.6, 1.0), (0.6, 0.5)):
        py = ews_count(graph, delta, p=p, q=q, seed=5, backend="python")
        col = ews_count(graph, delta, p=p, q=q, seed=5, backend="columnar")
        assert np.array_equal(py.grid, col.grid), (p, q)
    py = bts_count(graph, delta, q=0.7, seed=5, exact_when_full=False, backend="python")
    col = bts_count(graph, delta, q=0.7, seed=5, exact_when_full=False, backend="columnar")
    assert np.array_equal(py.grid, col.grid)


class TestEWS:
    def test_estimates_are_floats(self, paper_graph):
        result = ews_count(paper_graph, 10, p=0.5, seed=1)
        assert not result.is_exact
        assert result.algorithm == "ews"

    def test_deterministic_per_seed(self, paper_graph):
        a = ews_count(paper_graph, 10, p=0.5, seed=42)
        b = ews_count(paper_graph, 10, p=0.5, seed=42)
        assert np.array_equal(a.grid, b.grid)

    def test_unbiased_over_seeds(self):
        g = TemporalGraph(
            [(0, 1, t) for t in range(0, 30, 3)]
            + [(0, 2, t + 1) for t in range(0, 30, 3)]
        )
        exact = brute_force_counts(g, 8)
        grids = [ews_count(g, 8, p=0.5, seed=s).grid for s in range(400)]
        mean = np.mean(grids, axis=0)
        # total-count relative error under 10% with 400 draws
        assert abs(mean.sum() - exact.grid.sum()) <= 0.1 * max(exact.grid.sum(), 1)

    def test_wedge_subsampling_unbiased_anchor(self, paper_graph):
        full = ews_count(paper_graph, 10, p=1.0, q=1.0)
        exact = brute_force_counts(paper_graph, 10)
        assert np.allclose(full.grid, exact.grid)

    def test_parameter_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            ews_count(paper_graph, 10, p=0.0)
        with pytest.raises(ValidationError):
            ews_count(paper_graph, 10, p=0.5, q=1.5)
        with pytest.raises(ValidationError):
            ews_count(paper_graph, -1)

    def test_empty_graph(self):
        assert ews_count(TemporalGraph([]), 10).total() == 0


class TestBTS:
    def test_exact_fallback_with_q1(self, paper_graph):
        result = bts_count_pairs(paper_graph, 10, q=1.0)
        exact = brute_force_counts(paper_graph, 10)
        for motif in PAIR_MOTIFS:
            assert result[motif.name] == exact[motif.name]
        assert result.algorithm == "bts"

    def test_deterministic_per_seed(self, paper_graph):
        a = bts_count_pairs(paper_graph, 10, q=0.5, seed=9, exact_when_full=False)
        b = bts_count_pairs(paper_graph, 10, q=0.5, seed=9, exact_when_full=False)
        assert np.array_equal(a.grid, b.grid)

    def test_unbiased_over_seeds(self):
        g = TemporalGraph(
            [(2 * i % 10, (2 * i + 1) % 10, t) for i in range(5) for t in range(0, 60, 3)]
        )
        exact = brute_force_counts(g, 10)["M55"]
        ests = np.array(
            [
                bts_count_pairs(g, 10, q=0.5, seed=s, exact_when_full=False)["M55"]
                for s in range(600)
            ]
        )
        se = ests.std() / np.sqrt(len(ests))
        assert abs(ests.mean() - exact) < 5 * se + 1e-9

    def test_parallel_blocks_match_serial(self):
        g = TemporalGraph(
            [(2 * i % 10, (2 * i + 1) % 10, t) for i in range(5) for t in range(0, 60, 3)]
        )
        serial = bts_count_pairs(g, 10, q=0.8, seed=3, exact_when_full=False)
        parallel = bts_count_pairs(g, 10, q=0.8, seed=3, exact_when_full=False, workers=2)
        assert np.allclose(serial.grid, parallel.grid)

    def test_all_motifs_mode(self, paper_graph):
        result = bts_count(paper_graph, 10, q=1.0)
        assert result == brute_force_counts(paper_graph, 10)

    def test_parameter_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            bts_count_pairs(paper_graph, 10, q=0.0)
        with pytest.raises(ValidationError):
            bts_count_pairs(paper_graph, 10, window_factor=1.0)
        with pytest.raises(ValidationError):
            bts_count_pairs(paper_graph, -1)
        with pytest.raises(ValidationError):
            bts_count_pairs(paper_graph, 10, workers=0)

    def test_empty_graph(self):
        assert bts_count_pairs(TemporalGraph([]), 10, exact_when_full=False).total() == 0

    def test_instances_never_overweighted_with_q1(self):
        """With q=1 and forced sampling path, each estimate >= 0 and the
        average over offsets converges to the exact count."""
        g = TemporalGraph([(0, 1, t) for t in range(0, 24, 2)])
        exact = brute_force_counts(g, 6)["M55"]
        ests = [
            bts_count_pairs(g, 6, q=1.0, seed=s, exact_when_full=False)["M55"]
            for s in range(400)
        ]
        mean = float(np.mean(ests))
        assert mean == pytest.approx(exact, rel=0.1)
