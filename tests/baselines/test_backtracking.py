"""Tests for the BT backtracking matcher."""

import pytest
from hypothesis import given, settings

from repro.baselines.backtracking import (
    bt_count,
    bt_count_pairs,
    count_pattern,
    match_instances,
)
from repro.core.bruteforce import brute_force_counts
from repro.core.motifs import MOTIFS_BY_NAME, PAIR_MOTIFS
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=40, deadline=None)
@given(graph=temporal_graphs(max_edges=18), delta=deltas)
def test_bt_equals_bruteforce(graph, delta):
    assert bt_count(graph, delta) == brute_force_counts(graph, delta)


@settings(max_examples=40, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_bt_pairs_matches_pair_cells(graph, delta):
    bt = bt_count_pairs(graph, delta)
    brute = brute_force_counts(graph, delta)
    for motif in PAIR_MOTIFS:
        assert bt[motif.name] == brute[motif.name]


class TestMatching:
    def test_cycle_instance_edge_ids(self, triangle_graph):
        pattern = MOTIFS_BY_NAME["M26"].canonical
        assert list(match_instances(triangle_graph, 10, pattern)) == [(0, 1, 2)]

    def test_no_match_outside_delta(self, triangle_graph):
        pattern = MOTIFS_BY_NAME["M26"].canonical
        assert list(match_instances(triangle_graph, 1, pattern)) == []

    def test_injectivity_enforced(self):
        # pattern needs 3 distinct nodes; graph has a pair plus spoke
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 1, 3)])
        assert count_pattern(g, 10, MOTIFS_BY_NAME["M26"].canonical) == 0

    def test_instances_in_pattern_order(self, paper_graph):
        pattern = MOTIFS_BY_NAME["M63"].canonical  # <12,12,31>
        matches = list(match_instances(paper_graph, 10, pattern))
        assert len(matches) == 1
        eids = matches[0]
        assert list(eids) == sorted(eids)

    def test_first_range_restriction(self, paper_graph):
        pattern = MOTIFS_BY_NAME["M63"].canonical
        full = list(match_instances(paper_graph, 10, pattern))
        first_eid = full[0][0]
        inside = list(
            match_instances(paper_graph, 10, pattern, first_range=(first_eid, first_eid + 1))
        )
        outside = list(
            match_instances(paper_graph, 10, pattern, first_range=(first_eid + 1, 10**6))
        )
        assert inside == full
        assert outside == []

    def test_t_cap_excludes_instances(self, triangle_graph):
        pattern = MOTIFS_BY_NAME["M26"].canonical
        # cap below the closing edge's timestamp (t=3)
        assert list(match_instances(triangle_graph, 10, pattern, t_cap=3)) == []
        assert list(match_instances(triangle_graph, 10, pattern, t_cap=3.5)) != []


class TestGenericPatterns:
    def test_two_edge_pattern(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 1, 5)])
        # reciprocated pairs: (e1,e2) and (e2,e3) — the pattern is
        # direction-relative, so (1,0) followed by (0,1) matches too
        assert count_pattern(g, 3, ((1, 2), (2, 1))) == 2
        assert count_pattern(g, 0, ((1, 2), (2, 1))) == 0

    def test_four_edge_pattern(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 1, 3), (1, 0, 4)])
        assert count_pattern(g, 10, ((1, 2), (2, 1), (1, 2), (2, 1))) == 1

    def test_four_node_star_pattern(self):
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
        pattern = ((1, 2), (1, 3), (1, 4))  # 4-node out-star
        assert count_pattern(g, 10, pattern) == 1

    def test_self_loop_pattern_rejected(self):
        with pytest.raises(ValidationError):
            count_pattern(TemporalGraph([]), 10, ((1, 1), (1, 2), (2, 1)))

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValidationError):
            count_pattern(TemporalGraph([]), 10, ((1, 2), (3, 4), (2, 3)))

    def test_negative_delta_rejected(self):
        with pytest.raises(ValidationError):
            count_pattern(TemporalGraph([]), -1, ((1, 2), (2, 1)))


class TestCountsMetadata:
    def test_algorithm_label(self, paper_graph):
        assert bt_count_pairs(paper_graph, 10).algorithm == "bt"

    def test_pair_only_grid_is_masked(self, paper_graph):
        counts = bt_count_pairs(paper_graph, 10)
        assert counts["M11"] == 0  # star cell untouched
