"""Tests for the EX baseline (Paranjape et al. reimplementation)."""

import pytest
from hypothesis import given, settings

from repro.baselines.exact_ex import (
    ex_count,
    ex_pair_counts,
    ex_star_counts,
    ex_triangle_counts,
    make_slabs,
    static_triangles,
    _ex_partial,
)
from repro.core.api import count_motifs
from repro.core.bruteforce import brute_force_counts
from repro.core.motifs import MotifCategory
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=100, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_ex_equals_bruteforce(graph, delta):
    assert ex_count(graph, delta) == brute_force_counts(graph, delta)


@settings(max_examples=50, deadline=None)
@given(graph=temporal_graphs(), delta=deltas, workers=deltas.map(lambda d: d % 3 + 2))
def test_ex_slab_partition_exact(graph, delta, workers):
    """Summing per-slab partial grids reproduces the full counts."""
    graph.ensure_pair_index()
    total = {}
    for slab in make_slabs(graph, workers):
        for name, value in _ex_partial(graph, delta, "all", slab).items():
            total[name] = total.get(name, 0) + value
    expected = {k: v for k, v in brute_force_counts(graph, delta).per_motif().items() if v}
    assert total == expected


class TestComponents:
    def test_pair_component(self, paper_graph):
        pairs = ex_pair_counts(paper_graph, 10)
        expected = {
            name: value
            for name, value in brute_force_counts(paper_graph, 10).per_motif().items()
            if value and GRID_CATEGORY(name) is MotifCategory.PAIR
        }
        assert pairs == expected

    def test_star_component(self, paper_graph):
        stars = ex_star_counts(paper_graph, 10)
        expected = {
            name: value
            for name, value in brute_force_counts(paper_graph, 10).per_motif().items()
            if value and GRID_CATEGORY(name) is MotifCategory.STAR
        }
        assert stars == expected

    def test_triangle_component(self, paper_graph):
        tris = ex_triangle_counts(paper_graph, 10)
        expected = {
            name: value
            for name, value in brute_force_counts(paper_graph, 10).per_motif().items()
            if value and GRID_CATEGORY(name) is MotifCategory.TRIANGLE
        }
        assert tris == expected

    def test_categories_option(self, paper_graph):
        full = count_motifs(paper_graph, 10)
        star_only = ex_count(paper_graph, 10, categories="star")
        assert star_only.category_total(MotifCategory.STAR) == \
            full.category_total(MotifCategory.STAR)
        assert star_only.category_total(MotifCategory.PAIR) == 0


def GRID_CATEGORY(name):
    from repro.core.motifs import MOTIFS_BY_NAME

    return MOTIFS_BY_NAME[name].category


class TestStaticTriangles:
    def test_single_triangle(self, triangle_graph):
        assert static_triangles(triangle_graph) == [(0, 1, 2)]

    def test_triangle_counted_once(self):
        # dense multigraph on a triangle
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (1, 2, 3), (2, 1, 4), (0, 2, 5)])
        assert static_triangles(g) == [(0, 1, 2)]

    def test_no_triangles(self, tiny_pair_graph):
        assert static_triangles(tiny_pair_graph) == []

    def test_two_triangles_sharing_edge(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (0, 2, 3), (1, 3, 4), (0, 3, 5)])
        assert sorted(static_triangles(g)) == [(0, 1, 2), (0, 1, 3)]


class TestParallel:
    def test_fork_parallel_equals_serial(self, paper_graph):
        serial = ex_count(paper_graph, 10)
        assert ex_count(paper_graph, 10, workers=3) == serial

    def test_single_slab(self, paper_graph):
        slabs = make_slabs(paper_graph, 1)
        assert slabs == [(None, None)]

    def test_slab_count(self, paper_graph):
        assert len(make_slabs(paper_graph, 4)) == 4

    def test_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            ex_count(paper_graph, -1)
        with pytest.raises(ValidationError):
            ex_count(paper_graph, 10, workers=0)

    def test_empty_graph_parallel(self):
        assert ex_count(TemporalGraph([]), 10, workers=2).total() == 0
