"""Tests for the 2SCENT temporal cycle enumerator."""

import pytest
from hypothesis import given, settings

from repro.baselines.twoscent import enumerate_cycles, twoscent_count_cycles
from repro.core.bruteforce import brute_force_counts
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_length3_cycles_equal_m26(graph, delta):
    assert twoscent_count_cycles(graph, delta) == brute_force_counts(graph, delta)["M26"]


@settings(max_examples=50, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_all_lengths_mode_agrees_on_m26(graph, delta):
    assert twoscent_count_cycles(graph, delta, enumerate_all_lengths=True) == \
        brute_force_counts(graph, delta)["M26"]


class TestEnumeration:
    def test_single_cycle(self, triangle_graph):
        cycles = list(enumerate_cycles(triangle_graph, 10, max_length=3, min_length=3))
        assert cycles == [(0, 1, 2)]

    def test_cycle_needs_increasing_times(self):
        g = TemporalGraph([(0, 1, 3), (1, 2, 2), (2, 0, 1)])
        assert twoscent_count_cycles(g, 10) == 0

    def test_two_edge_cycles(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2)])
        cycles = list(enumerate_cycles(g, 10, max_length=2))
        assert cycles == [(0, 1)]

    def test_longer_cycles_enumerated(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)])
        lengths = sorted(len(c) for c in enumerate_cycles(g, 10))
        assert lengths == [4]

    def test_max_length_bound(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)])
        assert list(enumerate_cycles(g, 10, max_length=3)) == []

    def test_simple_cycles_only(self):
        # a walk revisiting node 1 is not a simple cycle
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 1, 3), (1, 0, 4)])
        lengths = sorted(len(c) for c in enumerate_cycles(g, 10))
        assert lengths == [2, 2]  # 0->1->0 via (e1,e4); 1->2->1 via (e2,e3)

    def test_delta_prunes(self):
        g = TemporalGraph([(0, 1, 0), (1, 2, 5), (2, 0, 100)])
        assert twoscent_count_cycles(g, 10) == 0
        assert twoscent_count_cycles(g, 100) == 1

    def test_cycle_rooted_once(self):
        # two interleaved cycles share edges; each reported exactly once
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 1, 3), (1, 0, 4)])
        cycles = list(enumerate_cycles(g, 10, max_length=2))
        # every ordered (out, back) pairing, each rooted at its first edge
        assert sorted(cycles) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_ties_resolved_by_edge_id(self):
        g = TemporalGraph([(0, 1, 5), (1, 2, 5), (2, 0, 5)])
        assert twoscent_count_cycles(g, 10) == 1

    def test_empty_graph(self):
        assert twoscent_count_cycles(TemporalGraph([]), 10) == 0


class TestValidation:
    def test_negative_delta(self):
        with pytest.raises(ValidationError):
            twoscent_count_cycles(TemporalGraph([]), -1)

    def test_min_length_too_small(self):
        with pytest.raises(ValidationError):
            list(enumerate_cycles(TemporalGraph([]), 10, min_length=1))

    def test_max_below_min(self):
        with pytest.raises(ValidationError):
            list(enumerate_cycles(TemporalGraph([]), 10, max_length=2, min_length=3))
