"""Unit tests for the sliding-window sequence counter (EX's primitive)."""

from repro.baselines.window_counter import count_sequences


def idx(c1, c2, c3, C=2):
    return (c1 * C + c2) * C + c3


class TestBasicCounting:
    def test_empty(self):
        assert sum(count_sequences([], 10, 2)) == 0

    def test_single_triple(self):
        events = [(0, 0, 0), (1, 1, 1), (2, 2, 0)]
        counts = count_sequences(events, 10, 2)
        assert counts[idx(0, 1, 0)] == 1
        assert sum(counts) == 1

    def test_all_triples_of_four_events(self):
        events = [(t, t, 0) for t in range(4)]
        counts = count_sequences(events, 10, 2)
        assert counts[idx(0, 0, 0)] == 4  # C(4,3)

    def test_window_expiry(self):
        events = [(0, 0, 0), (5, 1, 0), (100, 2, 0), (101, 3, 0), (102, 4, 0)]
        counts = count_sequences(events, 10, 2)
        # only (100,101,102) is within any 10-window
        assert counts[idx(0, 0, 0)] == 1

    def test_span_boundary_inclusive(self):
        events = [(0, 0, 0), (5, 1, 0), (10, 2, 0)]
        assert count_sequences(events, 10, 2)[idx(0, 0, 0)] == 1

    def test_span_boundary_exclusive_beyond(self):
        events = [(0, 0, 0), (5, 1, 0), (11, 2, 0)]
        assert count_sequences(events, 11, 2)[idx(0, 0, 0)] == 1
        assert count_sequences(events, 10, 2)[idx(0, 0, 0)] == 0

    def test_class_separation(self):
        events = [(0, 0, 1), (1, 1, 0), (2, 2, 1)]
        counts = count_sequences(events, 10, 2)
        assert counts[idx(1, 0, 1)] == 1
        assert counts[idx(0, 0, 0)] == 0

    def test_many_classes(self):
        events = [(0, 0, 0), (1, 1, 3), (2, 2, 5)]
        counts = count_sequences(events, 10, 6)
        assert counts[(0 * 6 + 3) * 6 + 5] == 1

    def test_matches_bruteforce_on_random_streams(self):
        import itertools
        import random

        rng = random.Random(5)
        for _ in range(40):
            n = rng.randint(0, 14)
            events = sorted(
                ((rng.randint(0, 12), k, rng.randint(0, 1)) for k in range(n)),
                key=lambda e: (e[0], e[1]),
            )
            events = [(t, k, c) for k, (t, _, c) in enumerate(events)]
            delta = rng.randint(0, 8)
            counts = count_sequences(events, delta, 2)
            expected = [0] * 8
            for a, b, c in itertools.combinations(range(len(events)), 3):
                if events[c][0] - events[a][0] <= delta:
                    expected[idx(events[a][2], events[b][2], events[c][2])] += 1
            assert counts == expected


class TestCountFromThreshold:
    def test_threshold_keeps_later_triples(self):
        events = [(0, 0, 0), (1, 1, 0), (2, 2, 0), (3, 3, 0)]
        full = count_sequences(events, 10, 2)
        # threshold at (2, 2): triples ending at events 2 and 3 only
        part = count_sequences(events, 10, 2, count_from=(2, 2))
        assert part[idx(0, 0, 0)] == 1 + 3  # (0,1,2) and the three ending at 3
        assert full[idx(0, 0, 0)] == 4

    def test_slabs_partition_exactly(self):
        events = [(t, t, t % 2) for t in range(12)]
        full = count_sequences(events, 5, 2)
        lo_half = count_sequences(events, 5, 2, count_from=(6, 6))
        # the complement: count everything, subtract
        hi_excluded = [f - p for f, p in zip(full, lo_half)]
        # recompute the early part by truncating the stream before (6,6)
        early = count_sequences([e for e in events if (e[0], e[1]) < (6, 6)], 5, 2)
        assert hi_excluded == early
