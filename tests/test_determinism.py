"""Determinism regression tests for the sampling algorithms.

The estimators must be *reproducible experiments*: for a fixed seed,
``bts`` and ``ews`` return bit-identical grids no matter how the work
is executed — worker count, start method, backend, or replicate count
must never perturb a single bit.  (The historical failure mode:
farming BTS blocks to a pool and reducing partials in arrival order,
which re-associates the floating-point sum differently on every run.)
"""

import numpy as np
import pytest

from repro.baselines.sampling_bts import bts_count
from repro.baselines.sampling_ews import ews_count
from repro.core.api import count_motifs
from repro.graph.generators import powerlaw_temporal_graph
from repro.parallel.pool import WorkerPool
from tests.conftest import random_graph

SEED = 7


@pytest.fixture(scope="module")
def graph():
    # Large enough that BTS samples many blocks (many partials to
    # mis-reduce) while BT matching stays fast.
    return powerlaw_temporal_graph(60, 700, seed=9)


class TestBtsDeterminism:
    def test_bit_identical_across_worker_counts(self, graph):
        grids = [
            count_motifs(
                graph, 50.0, algorithm="bts", seed=SEED, n_samples=2,
                workers=workers, q=0.6,
            ).grid
            for workers in (1, 2, 3)
        ]
        for other in grids[1:]:
            assert np.array_equal(grids[0], other)

    def test_bit_identical_across_backends(self, graph):
        py = count_motifs(
            graph, 50.0, algorithm="bts", seed=SEED, n_samples=2, backend="python"
        )
        col = count_motifs(
            graph, 50.0, algorithm="bts", seed=SEED, n_samples=2, backend="columnar"
        )
        assert np.array_equal(py.grid, col.grid)

    def test_repeated_runs_identical(self, graph):
        a = bts_count(graph, 50.0, q=0.5, seed=SEED, exact_when_full=False)
        b = bts_count(graph, 50.0, q=0.5, seed=SEED, exact_when_full=False)
        assert np.array_equal(a.grid, b.grid)

    def test_parallel_equals_serial_bit_for_bit(self, graph):
        serial = bts_count(graph, 50.0, q=0.6, seed=SEED, exact_when_full=False, workers=1)
        parallel = bts_count(graph, 50.0, q=0.6, seed=SEED, exact_when_full=False, workers=3)
        assert np.array_equal(serial.grid, parallel.grid)

    @pytest.mark.parametrize("seed", [0, 1, 12])
    def test_small_graphs_worker_invariant(self, seed):
        g = random_graph(seed, num_nodes=7, num_edges=35)
        serial = count_motifs(g, 8, algorithm="bts", seed=SEED, workers=1, q=0.7)
        parallel = count_motifs(g, 8, algorithm="bts", seed=SEED, workers=2, q=0.7)
        assert np.array_equal(serial.grid, parallel.grid)

    def test_different_seeds_differ(self, graph):
        a = count_motifs(graph, 50.0, algorithm="bts", seed=1, n_samples=1, q=0.4)
        b = count_motifs(graph, 50.0, algorithm="bts", seed=2, n_samples=1, q=0.4)
        # Not a hard guarantee cell-by-cell, but two seeds agreeing on
        # the whole grid would mean the seed is ignored.
        assert not np.array_equal(a.grid, b.grid)

    def test_columnar_bit_identical_across_worker_counts(self, graph):
        grids = [
            count_motifs(
                graph, 50.0, algorithm="bts", seed=SEED, n_samples=2,
                workers=workers, q=0.6, backend="columnar",
            ).grid
            for workers in (1, 2, 3)
        ]
        for other in grids[1:]:
            assert np.array_equal(grids[0], other)

    def test_pool_matches_serial_python_bit_for_bit(self, graph):
        """Block chunks on the persistent pool — either kernel backend,
        either start method — never shift the python-serial estimate."""
        serial = count_motifs(
            graph, 50.0, algorithm="bts", seed=SEED, n_samples=1, q=0.6,
            backend="python",
        )
        for method in ("fork", "spawn"):
            with WorkerPool(2, method, result_cache=False) as pool:
                for backend in ("python", "columnar"):
                    pooled = count_motifs(
                        graph, 50.0, algorithm="bts", seed=SEED, n_samples=1,
                        q=0.6, workers=2, pool=pool, backend=backend,
                    )
                    assert np.array_equal(serial.grid, pooled.grid), (method, backend)


class TestEwsDeterminism:
    def test_repeated_runs_identical(self, graph):
        a = count_motifs(graph, 50.0, algorithm="ews", seed=SEED, n_samples=3)
        b = count_motifs(graph, 50.0, algorithm="ews", seed=SEED, n_samples=3)
        assert np.array_equal(a.grid, b.grid)
        assert np.array_equal(a.stderr, b.stderr)

    def test_bit_identical_across_backends(self, graph):
        py = count_motifs(
            graph, 50.0, algorithm="ews", seed=SEED, n_samples=2, backend="python"
        )
        col = count_motifs(
            graph, 50.0, algorithm="ews", seed=SEED, n_samples=2, backend="columnar"
        )
        assert np.array_equal(py.grid, col.grid)

    @pytest.mark.parametrize("p,q", [(0.4, 0.5), (1.0, 0.3), (0.2, 0.9)])
    def test_wedge_subsampling_backend_invariant(self, graph, p, q):
        """q < 1 draws a wedge coin per candidate — the columnar kernel
        must consume the python loop's RNG stream in the same order."""
        py = ews_count(graph, 50.0, p=p, q=q, seed=SEED, backend="python")
        col = ews_count(graph, 50.0, p=p, q=q, seed=SEED, backend="columnar")
        assert np.array_equal(py.grid, col.grid)


class TestStartMethodInvariance:
    """The env toggle must never change sampling results."""

    def test_bts_under_spawn_env(self, graph, monkeypatch):
        baseline = count_motifs(
            graph, 50.0, algorithm="bts", seed=SEED, n_samples=1, workers=2, q=0.5
        )
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        under_spawn = count_motifs(
            graph, 50.0, algorithm="bts", seed=SEED, n_samples=1, workers=2, q=0.5
        )
        assert np.array_equal(baseline.grid, under_spawn.grid)
