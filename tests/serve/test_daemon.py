"""End-to-end daemon tests: unix-socket JSONL, HTTP, typed wire errors."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.errors import (
    DeadlineExceededError,
    QuotaExceededError,
    ReproError,
    UnknownGraphError,
    ValidationError,
)
from repro.serve import MotifService, ServeClient, ServeDaemon, ServiceConfig
from repro.serve.protocol import PROTOCOL_VERSION, canonical_counts_bytes

from tests.serve.conftest import running_daemon


# ---------------------------------------------------------------------------
# unix socket + client
# ---------------------------------------------------------------------------

def test_ping_and_introspection_ops(served):
    _, socket_path = served
    with ServeClient(socket_path) as client:
        pong = client.ping()
        assert pong["version"] == PROTOCOL_VERSION
        assert "demo" in [row["name"] for row in client.catalog()]
        assert "fast" in [spec["name"] for spec in client.algorithms()]
        stats = client.stats()
        assert "answered" in stats and "pool" in stats


def test_served_exact_counts_are_byte_identical(served, graph):
    _, socket_path = served
    with ServeClient(socket_path) as client:
        for delta in (15.0, 45.0):
            served_counts = client.count("demo", delta)
            direct = count_motifs(graph, delta, algorithm="fast")
            assert canonical_counts_bytes(served_counts) == canonical_counts_bytes(direct)
            assert served_counts.is_exact


def test_served_sampling_counts_reproduce_fixed_seed(served, graph):
    _, socket_path = served
    with ServeClient(socket_path) as client:
        served_counts = client.count(
            "demo", 30.0, algorithm="bts", seed=7, n_samples=3
        )
        direct = count_motifs(graph, 30.0, algorithm="bts", seed=7, n_samples=3)
        assert canonical_counts_bytes(served_counts) == canonical_counts_bytes(direct)
        assert np.array_equal(served_counts.stderr, direct.stderr)


def test_wire_errors_arrive_typed(served):
    _, socket_path = served
    with ServeClient(socket_path) as client:
        with pytest.raises(UnknownGraphError):
            client.count("missing", 10.0)
        with pytest.raises(ValidationError):
            client.count("demo", 10.0, algorithm="not-real")
        with pytest.raises(ValidationError):
            client.request({"op": "count", "graph": "demo"})  # no delta
        with pytest.raises(ReproError):
            client.request({"op": "warp"})  # unknown op
        # The connection survives every error above.
        assert client.ping()["version"] == PROTOCOL_VERSION


def test_deadline_and_quota_errors_cross_the_wire(graph):
    service = MotifService(
        ServiceConfig(workers=1, batch_window=0.5, tenant_quota=1)
    )
    service.add_graph("demo", graph)
    try:
        with running_daemon(service) as (_, socket_path):
            with ServeClient(socket_path) as client:
                with pytest.raises(DeadlineExceededError):
                    client.count("demo", 20.0, timeout=0.01)

                # Pin carol's only quota slot with a direct submission;
                # the wide batch window keeps it queued while the wire
                # request for a *different* delta arrives and is turned
                # away with a typed 429-class error.
                held = service.submit({
                    "graph": "demo", "delta": 35.0, "algorithm": "fast",
                    "categories": "all", "backend": "auto", "seed": None,
                    "n_samples": None, "params": {}, "tenant": "carol",
                    "timeout": 30.0, "id": None,
                })
                with pytest.raises(QuotaExceededError):
                    client.count("demo", 36.0, tenant="carol")
                held.result(60)
    finally:
        service.close()


def test_concurrent_clients_share_one_execution(graph):
    service = MotifService(ServiceConfig(workers=2, batch_window=0.4))
    service.add_graph("demo", graph)
    try:
        with running_daemon(service) as (_, socket_path):
            results, errors = [], []

            def hit() -> None:
                try:
                    with ServeClient(socket_path) as client:
                        results.append(client.count("demo", 28.0))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(results) == 5
            for counts in results[1:]:
                assert np.array_equal(counts.grid, results[0].grid)
            assert service.stats["executions"] == 1
            assert service.stats["coalesced"] == 4
    finally:
        service.close()


def test_malformed_json_line_gets_bad_request_envelope(served):
    _, socket_path = served
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    try:
        sock.sendall(b"this is not json\n")
        reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad_request"
    finally:
        sock.close()


def test_request_id_echoes_back(served):
    _, socket_path = served
    with ServeClient(socket_path) as client:
        envelope = client.request(
            {"op": "count", "graph": "demo", "delta": 12.0, "id": "req-42"}
        )
        assert envelope["id"] == "req-42"
        bad = {"op": "count", "graph": "nope", "delta": 1.0, "id": "req-43"}
        with pytest.raises(UnknownGraphError):
            client.request(bad)


def test_client_rejects_missing_socket(tmp_path):
    with pytest.raises(ReproError):
        ServeClient(str(tmp_path / "absent.sock"))


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------

@pytest.fixture
def http_served(graph):
    service = MotifService(ServiceConfig(workers=2, batch_window=0.001))
    service.add_graph("demo", graph)
    try:
        with running_daemon(service, http=True) as (daemon, _):
            host, port = daemon.http_address
            yield service, f"http://{host}:{port}"
    finally:
        service.close()


def _http_json(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def test_http_count_matches_direct(http_served, graph):
    _, base = http_served
    status, envelope = _http_json(
        base + "/v1/count", {"graph": "demo", "delta": 25.0}
    )
    assert status == 200 and envelope["ok"] is True
    from repro.serve.protocol import decode_counts

    served_counts = decode_counts(envelope["result"])
    direct = count_motifs(graph, 25.0, algorithm="fast")
    assert canonical_counts_bytes(served_counts) == canonical_counts_bytes(direct)


def test_http_status_codes_follow_error_classes(http_served):
    _, base = http_served
    status, envelope = _http_json(base + "/v1/ping")
    assert status == 200 and envelope["result"]["version"] == PROTOCOL_VERSION

    with pytest.raises(urllib.error.HTTPError) as info:
        _http_json(base + "/v1/count", {"graph": "ghost", "delta": 1.0})
    assert info.value.code == 404
    assert json.loads(info.value.read())["error"]["code"] == "unknown_graph"

    with pytest.raises(urllib.error.HTTPError) as info:
        _http_json(base + "/v1/count", {"graph": "demo", "delta": "wat"})
    assert info.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as info:
        _http_json(base + "/v1/nowhere")
    assert info.value.code == 404


def test_daemon_requires_at_least_one_transport(graph):
    service = MotifService(ServiceConfig(workers=1))
    service.add_graph("demo", graph)
    try:
        with pytest.raises(ValidationError):
            ServeDaemon(service)
    finally:
        service.close()
