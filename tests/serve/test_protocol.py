"""Protocol codec and typed-error-mapping tests (no sockets)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    ParallelExecutionError,
    QuotaExceededError,
    ReproError,
    UnknownGraphError,
    ValidationError,
)
from repro.serve.protocol import (
    canonical_counts_bytes,
    classify_error,
    decode_counts,
    encode_counts,
    error_response,
    ok_response,
    parse_count,
    raise_from_response,
)
from tests.conftest import random_graph


# ---------------------------------------------------------------------------
# error mapping
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("exc, code, status", [
    (ValidationError("bad"), "bad_request", 400),
    (UnknownGraphError("nope"), "unknown_graph", 404),
    (QuotaExceededError("over"), "quota_exceeded", 429),
    (BackpressureError("full"), "overloaded", 429),
    (DeadlineExceededError("late"), "deadline_exceeded", 504),
    (ParallelExecutionError("boom"), "execution_failed", 500),
    (ReproError("generic"), "error", 500),
    (RuntimeError("not ours"), "internal", 500),
])
def test_classify_error_table(exc, code, status):
    assert classify_error(exc) == (code, status)


def test_error_response_round_trips_to_same_exception_type():
    for exc in (
        ValidationError("v"), UnknownGraphError("g"), QuotaExceededError("q"),
        BackpressureError("b"), DeadlineExceededError("d"),
        ParallelExecutionError("p"),
    ):
        envelope = error_response(exc, request_id="r1")
        assert envelope["ok"] is False
        assert envelope["id"] == "r1"
        with pytest.raises(type(exc)):
            raise_from_response(json.loads(json.dumps(envelope)))


def test_unknown_code_degrades_to_repro_error():
    envelope = {"ok": False, "error": {"code": "from_the_future", "message": "?"}}
    with pytest.raises(ReproError):
        raise_from_response(envelope)


def test_ok_response_passes_through():
    envelope = ok_response({"x": 1}, request_id="abc")
    assert raise_from_response(envelope) is envelope
    assert envelope["result"] == {"x": 1}
    assert envelope["id"] == "abc"


def test_malformed_envelope_rejected():
    with pytest.raises(ValidationError):
        raise_from_response({"result": 1})


# ---------------------------------------------------------------------------
# counts codec
# ---------------------------------------------------------------------------

def test_encode_decode_exact_counts_round_trip():
    counts = count_motifs(random_graph(5, 8, 60), 10.0, algorithm="fast")
    payload = json.loads(json.dumps(encode_counts(counts)))
    back = decode_counts(payload)
    assert np.array_equal(back.grid, counts.grid)
    assert back.grid.dtype == counts.grid.dtype
    assert back.is_exact and back.stderr is None
    assert back.algorithm == counts.algorithm
    assert back.delta == counts.delta
    assert back.phase_seconds == dict(counts.phase_seconds)
    assert canonical_counts_bytes(back) == canonical_counts_bytes(counts)


def test_encode_decode_sampling_counts_round_trip():
    counts = count_motifs(
        random_graph(6, 8, 80), 10.0, algorithm="bts", seed=3, n_samples=2
    )
    back = decode_counts(json.loads(json.dumps(encode_counts(counts))))
    assert not back.is_exact
    assert back.grid.dtype == np.float64
    assert np.array_equal(back.grid, counts.grid)
    assert np.array_equal(back.stderr, counts.stderr)
    assert canonical_counts_bytes(back) == canonical_counts_bytes(counts)


def test_decode_counts_rejects_unknown_format():
    with pytest.raises(ValidationError):
        decode_counts({"format": "something/else"})


def test_canonical_bytes_ignore_provenance_but_not_answers():
    graph = random_graph(7, 8, 60)
    a = count_motifs(graph, 10.0, algorithm="fast")
    b = count_motifs(graph, 10.0, algorithm="fast", workers=2)
    # Same answer, different runtime label/timings: identical bytes.
    assert a.algorithm != b.algorithm  # hare[2] relabel
    assert canonical_counts_bytes(a) == canonical_counts_bytes(b)
    c = count_motifs(graph, 15.0, algorithm="fast")
    assert canonical_counts_bytes(a) != canonical_counts_bytes(c)


# ---------------------------------------------------------------------------
# count-op parsing
# ---------------------------------------------------------------------------

def test_parse_count_normalizes_defaults():
    fields = parse_count({"op": "count", "graph": "g", "delta": 5})
    assert fields["graph"] == "g"
    assert fields["delta"] == 5.0
    assert fields["algorithm"] == "fast"
    assert fields["categories"] == "all"
    assert fields["backend"] == "auto"
    assert fields["tenant"] == "default"
    assert fields["timeout"] is None and fields["id"] is None
    assert fields["params"] == {}


@pytest.mark.parametrize("message", [
    {"op": "count", "delta": 5},                         # no graph
    {"op": "count", "graph": "", "delta": 5},            # empty graph
    {"op": "count", "graph": "g"},                       # no delta
    {"op": "count", "graph": "g", "delta": "wat"},       # non-numeric delta
    {"op": "count", "graph": "g", "delta": 5, "workers": 4},   # reserved knob
    {"op": "count", "graph": "g", "delta": 5, "bogus": 1},     # typo field
    {"op": "count", "graph": "g", "delta": 5, "params": []},   # non-dict params
    {"op": "count", "graph": "g", "delta": 5, "timeout": 0},   # non-positive
    {"op": "count", "graph": "g", "delta": 5, "timeout": "x"},
    {"op": "count", "graph": "g", "delta": 5, "tenant": ""},
    {"op": "count", "graph": "g", "delta": 5, "id": 7},
])
def test_parse_count_rejects_malformed(message):
    with pytest.raises(ValidationError):
        parse_count(message)
