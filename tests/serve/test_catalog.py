"""Graph catalog tests: leases, graceful reload, segment reaping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.errors import UnknownGraphError, ValidationError
from repro.graph.shared import live_segments
from repro.graph.stream_store import StreamingEdgeStore
from repro.parallel.pool import WorkerPool
from repro.serve import GraphCatalog, MotifService, ServiceConfig
from repro.serve.protocol import canonical_counts_bytes

from tests.serve.conftest import service_graph


def fill_store(store: StreamingEdgeStore, n: int, *, t0: int = 0, seed: int = 1):
    import random

    rng = random.Random(seed)
    for i in range(n):
        u = rng.randrange(30)
        v = rng.randrange(30)
        if u == v:
            v = (v + 1) % 30
        store.append(u, v, t0 + i)


# ---------------------------------------------------------------------------
# bookkeeping (no pool)
# ---------------------------------------------------------------------------

def test_add_lease_remove_static_graph():
    catalog = GraphCatalog()
    graph = service_graph()
    catalog.add("g", graph)
    assert "g" in catalog and catalog.names() == ["g"]
    with catalog.lease("g") as lease:
        assert lease.graph is graph
    catalog.remove("g")
    assert "g" not in catalog
    with pytest.raises(UnknownGraphError):
        catalog.lease("g")
    with pytest.raises(UnknownGraphError):
        catalog.remove("g")


def test_add_rejects_duplicates_and_bad_sources():
    catalog = GraphCatalog()
    catalog.add("g", service_graph())
    with pytest.raises(ValidationError):
        catalog.add("g", service_graph())
    with pytest.raises(ValidationError):
        catalog.add("bad", object())
    with pytest.raises(ValidationError):
        catalog.add("", service_graph())


def test_lease_release_is_idempotent():
    catalog = GraphCatalog()
    catalog.add("g", service_graph())
    lease = catalog.lease("g")
    lease.release()
    lease.release()


def test_live_source_reload_old_lease_keeps_old_snapshot():
    store = StreamingEdgeStore()
    fill_store(store, 200)
    catalog = GraphCatalog()
    catalog.add("s", store)

    old = catalog.lease("s")
    old_version = old.version
    old_edges = old.graph.num_edges

    fill_store(store, 100, t0=500, seed=2)  # version advances
    new = catalog.lease("s")
    assert new.version != old_version
    assert new.graph.num_edges == old_edges + 100
    # The old lease still sees its snapshot, untouched.
    assert old.graph.num_edges == old_edges
    # Same-version leases share one generation (no re-snapshot).
    again = catalog.lease("s")
    assert again.graph is new.graph
    for lease in (old, new, again):
        lease.release()
    assert catalog.stats["reloads"] == 1


def test_streaming_engine_source_unwraps_to_its_store():
    from repro.core.registry import StreamRequest, open_stream

    engine = open_stream(StreamRequest(delta=10.0))
    engine.ingest([(0, 1, 0.0), (1, 2, 1.0), (2, 0, 2.0)])
    catalog = GraphCatalog()
    catalog.add("live", engine)
    with catalog.lease("live") as lease:
        assert lease.graph.num_edges == 3
    engine.ingest([(0, 2, 3.0)])
    with catalog.lease("live") as lease:
        assert lease.graph.num_edges == 4


# ---------------------------------------------------------------------------
# segment lifecycle against a real pool
# ---------------------------------------------------------------------------

def test_reload_reaps_old_generation_segments():
    store = StreamingEdgeStore()
    fill_store(store, 300)
    with WorkerPool(2) as pool:
        catalog = GraphCatalog(pool)
        catalog.add("s", store)

        old = catalog.lease("s")
        # Execute on the old snapshot so the pool publishes it.
        batches = pool.plan_batches(old.graph)
        pool.run_batches(old.graph, 20.0, batches)
        segments_old = set(live_segments())
        assert segments_old, "expected the old snapshot to be published"

        fill_store(store, 100, t0=900, seed=3)
        new = catalog.lease("s")
        pool.run_batches(new.graph, 20.0, pool.plan_batches(new.graph))
        # Old generation still leased: its segments must survive.
        assert set(live_segments()) >= segments_old
        reaped_before = catalog.stats["generations_reaped"]

        old.release()
        assert catalog.stats["generations_reaped"] == reaped_before + 1
        assert not (set(live_segments()) & segments_old)
        # The new generation keeps serving.
        star, _, _ = pool.run_batches(new.graph, 20.0, pool.plan_batches(new.graph))
        new.release()
        catalog.close()


def test_service_level_reload_semantics():
    store = StreamingEdgeStore()
    fill_store(store, 250)
    svc = MotifService(ServiceConfig(workers=2, batch_window=0.001))
    svc.add_graph("live", store)
    try:
        fields = {
            "graph": "live", "delta": 30.0, "algorithm": "fast",
            "categories": "all", "backend": "auto", "seed": None,
            "n_samples": None, "params": {}, "tenant": "default",
            "timeout": 30.0, "id": None,
        }
        before = svc.submit(dict(fields)).result(60)
        direct_before = count_motifs(store.live_graph(), 30.0, algorithm="fast")
        assert canonical_counts_bytes(before) == canonical_counts_bytes(direct_before)

        fill_store(store, 150, t0=600, seed=4)
        after = svc.submit(dict(fields)).result(60)
        direct_after = count_motifs(store.live_graph(), 30.0, algorithm="fast")
        assert canonical_counts_bytes(after) == canonical_counts_bytes(direct_after)
        # The stream grew, so the answer must have changed.
        assert not np.array_equal(before.grid, after.grid)
        assert svc.catalog.stats["reloads"] == 1
        assert svc.catalog.stats["generations_reaped"] >= 1
    finally:
        svc.close()


def test_catalog_close_reaps_pinned_static_graphs():
    graph = service_graph(seed=21)
    with WorkerPool(1) as pool:
        catalog = GraphCatalog(pool)
        catalog.add("g", graph)
        pool.publish(graph)
        assert live_segments()
        catalog.close()
        assert not live_segments()
