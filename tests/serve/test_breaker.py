"""Serving-layer degradation: circuit breaker, fallback, reconnect.

A catalog graph bound to a dead cluster must degrade gracefully: the
request is answered by local sharded counting (bit-identical — the
repo-wide invariant), the graph's circuit breaker opens after the
configured number of consecutive failures so later requests skip the
dead cluster entirely, and with fallback disabled the caller gets a
typed :class:`~repro.errors.ClusterDegradedError` carrying a
retry-after hint — across the wire protocol too.  Separately, the
blocking :class:`ServeClient` must survive a daemon restart by
reconnecting and resending.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.distributed import health as _health
from repro.distributed.health import RetryPolicy
from repro.errors import ClusterDegradedError, ReproError
from repro.serve import MotifService, ServiceConfig
from repro.serve.client import ServeClient
from repro.serve.protocol import error_response, ok_response, raise_from_response

from tests.serve.test_service import count_fields

#: host:port nothing listens on (port 1 is root-only and unused).
DEAD_CLUSTER = "127.0.0.1:1"


@pytest.fixture
def fast_policy(monkeypatch):
    """Make dead-cluster connects fail in milliseconds, not minutes."""
    policy = RetryPolicy(connect_timeout=0.3, op_timeout=5.0, max_attempts=1,
                         backoff_base=0.01, backoff_max=0.02)
    monkeypatch.setattr(_health, "DEFAULT_RETRY_POLICY", policy)
    return policy


def cluster_service(graph, **config_overrides):
    kwargs = dict(workers=2, batch_window=0.001,
                  breaker_threshold=2, breaker_reset=0.25)
    kwargs.update(config_overrides)
    svc = MotifService(ServiceConfig(**kwargs))
    svc.add_graph("demo", graph, cluster=DEAD_CLUSTER)
    return svc


def test_dead_cluster_falls_back_to_identical_local_counts(graph, fast_policy):
    direct = count_motifs(graph, 40.0, algorithm="fast")
    svc = cluster_service(graph)
    try:
        counts = svc.submit(count_fields(delta=40.0)).result(60)
        assert np.array_equal(counts.grid, direct.grid), (
            "degraded local counts diverged from direct counting"
        )
        meta = counts.meta["cluster"]
        assert meta["degraded"] is True
        assert meta["breaker_state"] in ("closed", "open")
        stats = svc.describe_stats()
        assert stats["cluster_failures"] >= 1
        assert stats["cluster_fallbacks"] >= 1
        assert stats["breakers"]["demo"]["state"] in ("closed", "open")
    finally:
        svc.close()


def test_breaker_opens_and_short_circuits_the_dead_cluster(graph, fast_policy):
    svc = cluster_service(graph)
    try:
        # threshold=2: two failed cluster attempts open the breaker.
        svc.submit(count_fields(delta=40.0)).result(60)
        svc.submit(count_fields(delta=41.0)).result(60)
        stats = svc.describe_stats()
        assert stats["cluster_failures"] == 2
        assert stats["breakers"]["demo"]["state"] == "open"
        assert stats["breakers"]["demo"]["retry_after_seconds"] > 0

        # Open breaker: the next request never touches the cluster —
        # it degrades immediately (failures stay put, fallbacks grow).
        counts = svc.submit(count_fields(delta=42.0)).result(60)
        assert counts.meta["cluster"]["degraded"] is True
        stats = svc.describe_stats()
        assert stats["cluster_failures"] == 2
        assert stats["cluster_fallbacks"] == 3
    finally:
        svc.close()


def test_fallback_disabled_raises_typed_with_retry_after(graph, fast_policy):
    svc = cluster_service(graph, cluster_fallback=False)
    try:
        with pytest.raises(ClusterDegradedError) as info:
            svc.submit(count_fields(delta=40.0)).result(60)
        assert "demo" in str(info.value)
        assert info.value.retry_after >= 0.0
        assert svc.describe_stats()["cluster_degraded"] >= 1
    finally:
        svc.close()


def test_cluster_degraded_round_trips_the_wire_protocol():
    error = ClusterDegradedError("cluster for graph 'g' is unavailable",
                                 retry_after=3.5)
    envelope = error_response(error, request_id="r1")
    assert envelope["error"]["code"] == "cluster_degraded"
    assert envelope["error"]["status"] == 503
    assert envelope["error"]["retry_after"] == 3.5
    with pytest.raises(ClusterDegradedError) as info:
        raise_from_response(envelope)
    assert info.value.retry_after == 3.5


# ----------------------------------------------------------------------
# ServeClient reconnect-with-backoff
# ----------------------------------------------------------------------

class OneShotServer:
    """A unix-socket server that answers one request per connection,
    then slams the connection shut — every follow-up request on a
    persistent client needs a reconnect, like a restarted daemon."""

    def __init__(self):
        self.tmpdir = tempfile.mkdtemp(prefix="reproserve-reconnect")
        self.socket_path = os.path.join(self.tmpdir, "serve.sock")
        self.requests = 0
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self._stopping = False
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                if self._stopping:
                    return
                continue
            except OSError:
                return
            try:
                line = conn.makefile("rb").readline()
                if line:
                    self.requests += 1
                    reply = ok_response({"pong": True, "n": self.requests})
                    conn.sendall(json.dumps(reply).encode() + b"\n")
            except OSError:
                pass
            finally:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def stop(self):
        self._stopping = True
        self._thread.join(timeout=5)
        self._listener.close()
        if os.path.exists(self.socket_path):
            os.remove(self.socket_path)
        os.rmdir(self.tmpdir)


def test_client_reconnects_transparently_after_server_drop():
    server = OneShotServer()
    try:
        client = ServeClient(server.socket_path, timeout=5.0)
        try:
            assert client.ping()["n"] == 1
            assert client.reconnects == 0
            # The server dropped the connection after the first reply;
            # the next request must reconnect and resend, invisibly.
            assert client.ping()["n"] == 2
            assert client.reconnects == 1
            assert client.ping()["n"] == 3
            assert client.reconnects == 2
        finally:
            client.close()
    finally:
        server.stop()


def test_client_fails_fast_when_server_never_comes_back():
    server = OneShotServer()
    path = server.socket_path
    client = ServeClient(path, timeout=5.0,
                         reconnect_policy=RetryPolicy(
                             connect_timeout=0.3, max_attempts=2,
                             backoff_base=0.01, backoff_max=0.02, jitter=0.0))
    try:
        assert client.ping()["n"] == 1
        server.stop()  # daemon gone for good, socket path removed
        with pytest.raises(ReproError) as info:
            client.ping()
        assert path in str(info.value)
    finally:
        client.close()


def test_initial_connect_still_fails_fast(tmp_path):
    missing = str(tmp_path / "no-daemon.sock")
    with pytest.raises(ReproError) as info:
        ServeClient(missing)
    assert missing in str(info.value)
