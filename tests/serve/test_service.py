"""MotifService admission/batching tests: coalescing, quotas, deadlines."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    QuotaExceededError,
    ReproError,
    UnknownGraphError,
    ValidationError,
)
from repro.serve import MotifService, ServiceConfig
from repro.serve.protocol import canonical_counts_bytes


def count_fields(graph="demo", delta=40.0, **overrides):
    fields = {
        "graph": graph, "delta": float(delta), "algorithm": "fast",
        "categories": "all", "backend": "auto", "seed": None,
        "n_samples": None, "params": {}, "tenant": "default",
        "timeout": 30.0, "id": None,
    }
    fields.update(overrides)
    return fields


@pytest.fixture
def service(graph):
    svc = MotifService(ServiceConfig(workers=2, batch_window=0.001))
    svc.add_graph("demo", graph)
    try:
        yield svc
    finally:
        svc.close()


def test_served_counts_match_direct_call(service, graph):
    served = service.submit(count_fields(delta=40.0)).result(60)
    direct = count_motifs(graph, 40.0, algorithm="fast")
    assert canonical_counts_bytes(served) == canonical_counts_bytes(direct)


def test_unknown_graph_is_synchronous_and_typed(service):
    with pytest.raises(UnknownGraphError):
        service.submit(count_fields(graph="missing"))


def test_bad_algorithm_surfaces_as_validation_error(service):
    future = service.submit(count_fields(algorithm="not-an-algorithm"))
    with pytest.raises(ValidationError):
        future.result(60)


def test_duplicate_inflight_requests_coalesce_to_one_execution(graph):
    # A wide batch window holds the queue open while identical
    # requests pile up; all must resolve from a single pool execution.
    svc = MotifService(ServiceConfig(workers=2, batch_window=0.4))
    svc.add_graph("demo", graph)
    try:
        futures = [svc.submit(count_fields(delta=35.0)) for _ in range(6)]
        results = [f.result(60) for f in futures]
        grids = [r.grid for r in results]
        for grid in grids[1:]:
            assert np.array_equal(grid, grids[0])
        assert svc.stats["executions"] == 1
        assert svc.stats["coalesced"] == 5
        assert svc.stats["answered"] == 6
    finally:
        svc.close()


def test_compatible_deltas_batch_into_one_sweep(graph):
    svc = MotifService(ServiceConfig(workers=2, batch_window=0.4))
    svc.add_graph("demo", graph)
    try:
        deltas = [20.0, 40.0, 60.0]
        futures = [svc.submit(count_fields(delta=d)) for d in deltas]
        results = {d: f.result(60) for d, f in zip(deltas, futures)}
        # One batched execution covering all three δ, answers exact.
        assert svc.stats["executions"] == 1
        assert svc.stats["batched_deltas"] == 3
        for d in deltas:
            direct = count_motifs(graph, d, algorithm="fast")
            assert canonical_counts_bytes(results[d]) == canonical_counts_bytes(direct)
    finally:
        svc.close()


def test_tenant_quota_rejects_excess_in_flight(graph):
    svc = MotifService(ServiceConfig(workers=1, batch_window=0.5, tenant_quota=2))
    svc.add_graph("demo", graph)
    try:
        held = [
            svc.submit(count_fields(delta=d, tenant="alice"))
            for d in (10.0, 20.0)
        ]
        with pytest.raises(QuotaExceededError):
            svc.submit(count_fields(delta=30.0, tenant="alice"))
        # Another tenant is unaffected: quotas are per tenant.
        other = svc.submit(count_fields(delta=30.0, tenant="bob"))
        for future in held + [other]:
            future.result(60)
        assert svc.stats["rejected_quota"] == 1
        # Quota slots were returned on completion.
        svc.submit(count_fields(delta=40.0, tenant="alice")).result(60)
    finally:
        svc.close()


def test_backpressure_bounds_pending_groups(graph):
    svc = MotifService(ServiceConfig(workers=1, batch_window=0.5, max_pending=2))
    svc.add_graph("demo", graph)
    try:
        held = [svc.submit(count_fields(delta=d)) for d in (10.0, 20.0)]
        with pytest.raises(BackpressureError):
            svc.submit(count_fields(delta=30.0))
        # Identical to an in-flight request: coalesces, never rejected.
        dup = svc.submit(count_fields(delta=10.0))
        for future in held + [dup]:
            future.result(60)
        assert svc.stats["rejected_backpressure"] == 1
        assert svc.stats["coalesced"] == 1
    finally:
        svc.close()


def test_deadline_expires_while_queued(graph):
    svc = MotifService(ServiceConfig(workers=1, batch_window=0.3))
    svc.add_graph("demo", graph)
    try:
        future = svc.submit(count_fields(delta=25.0, timeout=0.01))
        with pytest.raises(DeadlineExceededError):
            future.result(60)
        assert svc.stats["deadline_misses"] >= 1
        # The service stays healthy for later requests.
        ok = svc.submit(count_fields(delta=25.0, timeout=30.0))
        assert ok.result(60).total() >= 0
    finally:
        svc.close()


def test_default_timeout_applies_when_request_has_none(graph):
    svc = MotifService(
        ServiceConfig(workers=1, batch_window=0.3, default_timeout=0.01)
    )
    svc.add_graph("demo", graph)
    try:
        future = svc.submit(count_fields(delta=25.0, timeout=None))
        with pytest.raises(DeadlineExceededError):
            future.result(60)
    finally:
        svc.close()


def test_concurrent_submissions_from_many_threads(service, graph):
    deltas = [10.0, 20.0, 30.0, 40.0]
    direct = {
        d: canonical_counts_bytes(count_motifs(graph, d, algorithm="fast"))
        for d in deltas
    }
    errors = []
    matches = []

    def worker(idx: int) -> None:
        try:
            d = deltas[idx % len(deltas)]
            counts = service.submit(
                count_fields(delta=d, tenant=f"t{idx % 3}")
            ).result(60)
            matches.append(canonical_counts_bytes(counts) == direct[d])
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert len(matches) == 12 and all(matches)


def test_repeated_requests_hit_the_pool_result_cache(service):
    service.submit(count_fields(delta=33.0)).result(60)
    hits_before = service.pool.stats["cache_hits"]
    service.submit(count_fields(delta=33.0)).result(60)
    assert service.pool.stats["cache_hits"] > hits_before


def test_submit_after_close_raises(graph):
    svc = MotifService(ServiceConfig(workers=1))
    svc.add_graph("demo", graph)
    svc.close()
    with pytest.raises(ReproError):
        svc.submit(count_fields())
    svc.close()  # idempotent


def test_describe_stats_merges_pool_and_catalog(service):
    service.submit(count_fields(delta=12.0)).result(60)
    stats = service.describe_stats()
    assert stats["answered"] >= 1
    assert "jobs" in stats["pool"]
    assert "generations_reaped" in stats["catalog"]
    assert stats["pool_workers"] == 2
