"""Fixtures for the serving-layer tests: graphs and a daemon harness."""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
from contextlib import contextmanager

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.serve import MotifService, ServeDaemon, ServiceConfig

from tests.conftest import random_edges


def service_graph(seed: int = 11, num_nodes: int = 40, num_edges: int = 500) -> TemporalGraph:
    """A deterministic mid-size graph with motifs in every category."""
    import random

    rng = random.Random(seed)
    return TemporalGraph(random_edges(rng, num_nodes, num_edges, t_max=300))


@pytest.fixture
def graph() -> TemporalGraph:
    return service_graph()


@contextmanager
def running_daemon(service: MotifService, *, http: bool = False):
    """Run a :class:`ServeDaemon` on a fresh unix socket in a thread.

    Yields ``(daemon, socket_path)``; tears the transports and loop
    down afterwards (the caller owns the service's lifecycle).
    """
    tmpdir = tempfile.mkdtemp(prefix="reproserve", dir="/tmp")
    socket_path = os.path.join(tmpdir, "serve.sock")
    daemon = ServeDaemon(
        service,
        socket_path=socket_path,
        http_port=0 if http else None,
    )
    ready = threading.Event()
    holder = {}

    def run_loop() -> None:
        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True, name="serve-test-loop")
    thread.start()
    assert ready.wait(20), "daemon failed to start"
    try:
        yield daemon, socket_path
    finally:
        loop = holder["loop"]
        asyncio.run_coroutine_threadsafe(daemon.stop(), loop).result(20)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=20)
        loop.close()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        os.rmdir(tmpdir)


@pytest.fixture
def served(graph):
    """A running daemon over a 2-worker service holding ``graph`` as "demo"."""
    service = MotifService(ServiceConfig(workers=2, batch_window=0.001))
    service.add_graph("demo", graph)
    try:
        with running_daemon(service) as (daemon, socket_path):
            yield service, socket_path
    finally:
        service.close()
